//! A complete placement instance: netlist + floorplan + cell positions.

use crate::fence::{validate_fences, FenceRegion};
use crate::{CellId, CellKind, DbError, NetId, Netlist, Point, Rect};
use xplace_testkit::{FromJson, Json, JsonError, ToJson};

/// A placement row (as in the Bookshelf `.scl` / DEF `ROW` records).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Lower y coordinate of the row.
    pub y: f64,
    /// Row (site) height.
    pub height: f64,
    /// Leftmost x coordinate.
    pub x_min: f64,
    /// Rightmost x coordinate.
    pub x_max: f64,
    /// Width of one placement site.
    pub site_width: f64,
}

impl Row {
    /// Number of whole sites in the row.
    pub fn num_sites(&self) -> usize {
        ((self.x_max - self.x_min) / self.site_width).floor() as usize
    }

    /// The row's bounding rectangle.
    pub fn rect(&self) -> Rect {
        Rect::new(self.x_min, self.y, self.x_max, self.y + self.height)
    }
}

/// A placement design: the netlist plus everything the placer needs to run.
///
/// Cell positions are stored as **centers** (the natural coordinate for the
/// analytic formulation); conversions to lower-left corners happen at the
/// file-format boundary.
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    netlist: Netlist,
    region: Rect,
    rows: Vec<Row>,
    target_density: f64,
    /// Cell center positions, indexed by `CellId`.
    positions: Vec<Point>,
    /// Fence regions (empty for unconstrained designs).
    fences: Vec<FenceRegion>,
}

impl Design {
    /// Assembles a design.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidDesign`] if `positions.len()` differs from
    /// the cell count, the region is degenerate, or `target_density` is not
    /// in `(0, 1]`.
    pub fn new(
        name: impl Into<String>,
        netlist: Netlist,
        region: Rect,
        rows: Vec<Row>,
        target_density: f64,
        positions: Vec<Point>,
    ) -> Result<Self, DbError> {
        if positions.len() != netlist.num_cells() {
            return Err(DbError::InvalidDesign(format!(
                "{} positions supplied for {} cells",
                positions.len(),
                netlist.num_cells()
            )));
        }
        if region.width() <= 0.0 || region.height() <= 0.0 {
            return Err(DbError::InvalidDesign(format!(
                "degenerate region {region}"
            )));
        }
        if !(target_density > 0.0 && target_density <= 1.0) {
            return Err(DbError::InvalidDesign(format!(
                "target density {target_density} outside (0, 1]"
            )));
        }
        Ok(Design {
            name: name.into(),
            netlist,
            region,
            rows,
            target_density,
            positions,
            fences: Vec::new(),
        })
    }

    /// Installs fence regions, replacing any existing ones.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidDesign`] when a fence references an
    /// unknown or non-movable cell, a cell belongs to two fences, or a
    /// fence rect leaves the region (see [`crate::fence::validate_fences`]).
    pub fn set_fences(&mut self, fences: Vec<FenceRegion>) -> Result<(), DbError> {
        let old = std::mem::replace(&mut self.fences, fences);
        if let Err(e) = validate_fences(self) {
            self.fences = old;
            return Err(e);
        }
        Ok(())
    }

    /// The design's fence regions.
    pub fn fences(&self) -> &[FenceRegion] {
        &self.fences
    }

    /// The index (into [`Design::fences`]) of the fence owning `cell`,
    /// if any.
    pub fn fence_of(&self, cell: CellId) -> Option<usize> {
        self.fences.iter().position(|f| f.members().contains(&cell))
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The placeable die region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Placement rows (may be empty for purely analytic experiments).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The benchmark-given target density `D_t`.
    pub fn target_density(&self) -> f64 {
        self.target_density
    }

    /// All cell center positions, indexed by cell id.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Mutable cell positions (the placer writes these).
    pub fn positions_mut(&mut self) -> &mut [Point] {
        &mut self.positions
    }

    /// Replaces all cell positions.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the cell count.
    pub fn set_positions(&mut self, positions: Vec<Point>) {
        assert_eq!(
            positions.len(),
            self.netlist.num_cells(),
            "position count mismatch"
        );
        self.positions = positions;
    }

    /// The center position of one cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn position(&self, cell: CellId) -> Point {
        self.positions[cell.index()]
    }

    /// The bounding rectangle of one cell at its current position.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let c = self.netlist.cell(cell);
        Rect::from_center(self.positions[cell.index()], c.width(), c.height())
    }

    /// Absolute position of a pin (owning cell center + offset).
    pub fn pin_position(&self, pin: crate::PinId) -> Point {
        let p = self.netlist.pin(pin);
        self.positions[p.cell.index()] + p.offset
    }

    /// Half-perimeter wirelength of one net at the current positions.
    ///
    /// Returns 0 for single-pin nets.
    pub fn net_hpwl(&self, net: NetId) -> f64 {
        let range = self.netlist.net_pin_range(net);
        self.span_hpwl(range)
    }

    /// HPWL of one net-major CSR span, streaming the flat pin arrays.
    fn span_hpwl(&self, range: std::ops::Range<usize>) -> f64 {
        if range.len() < 2 {
            return 0.0;
        }
        let cells = self.netlist.pin_cells();
        let dx = self.netlist.pin_dx();
        let dy = self.netlist.pin_dy();
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for i in range {
            let c = self.positions[cells[i].index()];
            let x = c.x + dx[i];
            let y = c.y + dy[i];
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        (max_x - min_x) + (max_y - min_y)
    }

    /// Total weighted HPWL over all nets (Eq. (1a)/(2) of the paper).
    /// One contiguous pass over the net-major CSR arrays.
    pub fn total_hpwl(&self) -> f64 {
        let starts = self.netlist.net_start();
        let weights = self.netlist.net_weights();
        let mut total = 0.0;
        for e in 0..self.netlist.num_nets() {
            total += weights[e] * self.span_hpwl(starts[e] as usize..starts[e + 1] as usize);
        }
        total
    }

    /// Area of the die region.
    pub fn region_area(&self) -> f64 {
        self.region.area()
    }

    /// Total area of fixed, non-terminal cells that lies inside the region.
    pub fn fixed_area_in_region(&self) -> f64 {
        self.netlist
            .cell_ids()
            .filter(|&c| self.netlist.cell(c).kind() == CellKind::Fixed)
            .map(|c| self.cell_rect(c).overlap_area(&self.region))
            .sum()
    }

    /// Design utilization: movable area over free (non-fixed) region area.
    pub fn utilization(&self) -> f64 {
        let free = self.region_area() - self.fixed_area_in_region();
        if free <= 0.0 {
            f64::INFINITY
        } else {
            self.netlist.movable_area() / free
        }
    }

    /// Whitespace area available to movable cells.
    pub fn whitespace_area(&self) -> f64 {
        (self.region_area() - self.fixed_area_in_region() - self.netlist.movable_area()).max(0.0)
    }

    /// Checks the structural invariants of the design.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidDesign`] when a movable cell is larger
    /// than the region, utilization exceeds 1, or the target density is
    /// below the utilization (the density constraint would be infeasible).
    pub fn validate(&self) -> Result<(), DbError> {
        for c in self.netlist.cell_ids() {
            let cell = self.netlist.cell(c);
            if cell.is_movable()
                && (cell.width() > self.region.width() || cell.height() > self.region.height())
            {
                return Err(DbError::InvalidDesign(format!(
                    "movable cell `{}` ({}x{}) exceeds the region",
                    cell.name(),
                    cell.width(),
                    cell.height()
                )));
            }
        }
        let util = self.utilization();
        if util > 1.0 {
            return Err(DbError::InvalidDesign(format!(
                "utilization {util:.3} exceeds 1"
            )));
        }
        if self.target_density < util {
            return Err(DbError::InvalidDesign(format!(
                "target density {:.3} below utilization {util:.3}",
                self.target_density
            )));
        }
        Ok(())
    }
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("y", Json::Num(self.y)),
            ("height", Json::Num(self.height)),
            ("x_min", Json::Num(self.x_min)),
            ("x_max", Json::Num(self.x_max)),
            ("site_width", Json::Num(self.site_width)),
        ])
    }
}

impl FromJson for Row {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Row {
            y: value.field("y")?.as_f64()?,
            height: value.field("height")?.as_f64()?,
            x_min: value.field("x_min")?.as_f64()?,
            x_max: value.field("x_max")?.as_f64()?,
            site_width: value.field("site_width")?.as_f64()?,
        })
    }
}

impl ToJson for Design {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("netlist", self.netlist.to_json()),
            ("region", self.region.to_json()),
            ("rows", self.rows.to_json()),
            ("target_density", Json::Num(self.target_density)),
            ("positions", self.positions.to_json()),
            ("fences", self.fences.to_json()),
        ])
    }
}

impl FromJson for Design {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let netlist = Netlist::from_json(value.field("netlist")?)?;
        let positions: Vec<Point> = Vec::from_json(value.field("positions")?)?;
        if positions.len() != netlist.num_cells() {
            return Err(JsonError(format!(
                "{} positions supplied for {} cells",
                positions.len(),
                netlist.num_cells()
            )));
        }
        // A missing `fences` field (designs encoded before fences existed)
        // decodes as no fences.
        let fences = match value.get("fences") {
            Some(f) => Vec::from_json(f)?,
            None => Vec::new(),
        };
        let design = Design {
            name: value.field("name")?.as_str()?.to_string(),
            netlist,
            region: Rect::from_json(value.field("region")?)?,
            rows: Vec::from_json(value.field("rows")?)?,
            target_density: value.field("target_density")?.as_f64()?,
            positions,
            fences,
        };
        validate_fences(&design).map_err(|e| JsonError(e.to_string()))?;
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn tiny_design() -> Design {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 2.0, 2.0, CellKind::Movable);
        let c = b.add_cell("c", 2.0, 2.0, CellKind::Movable);
        let f = b.add_cell("f", 4.0, 4.0, CellKind::Fixed);
        b.add_net("n0", vec![(a, Point::default()), (c, Point::default())])
            .unwrap();
        b.add_net("n1", vec![(a, Point::new(0.5, 0.5)), (f, Point::default())])
            .unwrap();
        let nl = b.finish().unwrap();
        Design::new(
            "tiny",
            nl,
            Rect::new(0.0, 0.0, 20.0, 20.0),
            vec![Row {
                y: 0.0,
                height: 2.0,
                x_min: 0.0,
                x_max: 20.0,
                site_width: 1.0,
            }],
            0.9,
            vec![
                Point::new(5.0, 5.0),
                Point::new(8.0, 9.0),
                Point::new(15.0, 15.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn hpwl_of_two_pin_net() {
        let d = tiny_design();
        // a at (5,5), c at (8,9): HPWL = 3 + 4.
        assert_eq!(d.net_hpwl(NetId(0)), 7.0);
        // n1: pin at (5.5,5.5), f at (15,15): 9.5 + 9.5.
        assert_eq!(d.net_hpwl(NetId(1)), 19.0);
        assert_eq!(d.total_hpwl(), 26.0);
    }

    #[test]
    fn cell_rect_uses_center_convention() {
        let d = tiny_design();
        let r = d.cell_rect(CellId(0));
        assert_eq!(r, Rect::new(4.0, 4.0, 6.0, 6.0));
    }

    #[test]
    fn utilization_and_whitespace() {
        let d = tiny_design();
        // region 400, fixed 16, movable 8.
        assert!((d.utilization() - 8.0 / 384.0).abs() < 1e-12);
        assert!((d.whitespace_area() - 376.0).abs() < 1e-12);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn position_count_mismatch_is_rejected() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let nl = b.finish().unwrap();
        let err = Design::new(
            "bad",
            nl,
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![],
            0.9,
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, DbError::InvalidDesign(_)));
    }

    #[test]
    fn bad_target_density_is_rejected() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let nl = b.finish().unwrap();
        let err = Design::new(
            "bad",
            nl,
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![],
            1.5,
            vec![Point::default()],
        )
        .unwrap_err();
        assert!(matches!(err, DbError::InvalidDesign(_)));
    }

    #[test]
    fn oversized_movable_cell_fails_validation() {
        let mut b = NetlistBuilder::new();
        b.add_cell("huge", 50.0, 1.0, CellKind::Movable);
        let nl = b.finish().unwrap();
        let d = Design::new(
            "bad",
            nl,
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![],
            0.9,
            vec![Point::new(5.0, 5.0)],
        )
        .unwrap();
        assert!(d.validate().is_err());
    }

    #[test]
    fn single_pin_net_has_zero_hpwl() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        b.add_net("n", vec![(a, Point::default())]).unwrap();
        let nl = b.finish().unwrap();
        let d = Design::new(
            "one",
            nl,
            Rect::new(0.0, 0.0, 10.0, 10.0),
            vec![],
            0.9,
            vec![Point::new(3.0, 3.0)],
        )
        .unwrap();
        assert_eq!(d.total_hpwl(), 0.0);
    }

    #[test]
    fn row_sites() {
        let row = Row {
            y: 0.0,
            height: 12.0,
            x_min: 10.0,
            x_max: 110.0,
            site_width: 4.0,
        };
        assert_eq!(row.num_sites(), 25);
        assert_eq!(row.rect().height(), 12.0);
    }

    #[test]
    fn design_json_round_trip() {
        let d = tiny_design();
        let decoded = Design::from_json_str(&d.to_json_string()).unwrap();
        assert_eq!(decoded.name(), d.name());
        assert_eq!(decoded.region(), d.region());
        assert_eq!(decoded.rows(), d.rows());
        assert_eq!(decoded.positions(), d.positions());
        assert_eq!(decoded.total_hpwl(), d.total_hpwl());
        assert!(decoded.fences().is_empty());
    }

    #[test]
    fn design_decode_defaults_missing_fences() {
        let d = tiny_design();
        let mut json = xplace_testkit::Json::parse(&d.to_json_string()).unwrap();
        if let xplace_testkit::Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "fences");
        }
        let decoded = Design::from_json_str(&json.render()).unwrap();
        assert!(decoded.fences().is_empty());
    }

    #[test]
    fn set_positions_replaces() {
        let mut d = tiny_design();
        let mut ps = d.positions().to_vec();
        ps[0] = Point::new(1.0, 1.0);
        d.set_positions(ps);
        assert_eq!(d.position(CellId(0)), Point::new(1.0, 1.0));
    }
}
