//! GSRC Bookshelf format reader and writer.
//!
//! The ISPD 2005 contest benchmarks are distributed in the Bookshelf
//! format: an `.aux` index file naming a `.nodes` (cells), `.nets`
//! (connectivity), `.pl` (placement) and `.scl` (rows) file. This module
//! parses and emits that format so real contest data can replace the
//! synthetic suites when available, and so global-placement results can be
//! handed to external legalizers the way the paper hands them to NTUPlace3.
//!
//! Conventions: Bookshelf stores lower-left cell corners and pin offsets
//! from the cell **center**; [`crate::Design`] stores centers everywhere,
//! so `.pl` coordinates are converted on the way in and out.

use crate::netlist::NetlistBuilder;
use crate::{CellId, CellKind, DbError, Design, Point, Rect, Row};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// In-memory contents of a Bookshelf benchmark (pre-assembly).
#[derive(Debug, Clone, Default)]
struct BookshelfData {
    /// name -> (width, height, is_terminal_keyword)
    nodes: Vec<(String, f64, f64, bool)>,
    /// net name -> pins (cell name, offset from center)
    nets: Vec<(String, Vec<(String, Point)>)>,
    /// name -> (lower-left x, lower-left y, fixed)
    placements: HashMap<String, (f64, f64, bool)>,
    rows: Vec<Row>,
    /// net name -> weight (from the .wts file; default 1.0).
    weights: HashMap<String, f64>,
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(idx) => &line[..idx],
        None => line,
    }
}

fn parse_kv(line: &str, key: &str) -> Option<f64> {
    let line = line.trim();
    let rest = line.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix(':')?.trim();
    rest.split_whitespace().next()?.parse().ok()
}

fn parse_nodes(content: &str, data: &mut BookshelfData) -> Result<(), DbError> {
    for (lineno, raw) in content.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty()
            || line.starts_with("UCLA")
            || line.starts_with("NumNodes")
            || line.starts_with("NumTerminals")
        {
            continue;
        }
        let mut it = line.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| DbError::parse("nodes", lineno + 1, "missing node name"))?;
        let w: f64 = it
            .next()
            .ok_or_else(|| DbError::parse("nodes", lineno + 1, "missing width"))?
            .parse()
            .map_err(|_| DbError::parse("nodes", lineno + 1, "width is not a number"))?;
        let h: f64 = it
            .next()
            .ok_or_else(|| DbError::parse("nodes", lineno + 1, "missing height"))?
            .parse()
            .map_err(|_| DbError::parse("nodes", lineno + 1, "height is not a number"))?;
        let terminal = it
            .next()
            .map(|t| t.eq_ignore_ascii_case("terminal"))
            .unwrap_or(false);
        data.nodes.push((name.to_string(), w, h, terminal));
    }
    if data.nodes.is_empty() {
        return Err(DbError::parse("nodes", 0, "no node records found"));
    }
    Ok(())
}

fn parse_nets(content: &str, data: &mut BookshelfData) -> Result<(), DbError> {
    let mut current: Option<(String, usize, Vec<(String, Point)>)> = None;
    let mut anon = 0usize;
    for (lineno, raw) in content.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty()
            || line.starts_with("UCLA")
            || line.starts_with("NumNets")
            || line.starts_with("NumPins")
        {
            continue;
        }
        if let Some(rest) = line.strip_prefix("NetDegree") {
            if let Some((name, _deg, pins)) = current.take() {
                data.nets.push((name, pins));
            }
            let rest = rest.trim_start().strip_prefix(':').unwrap_or(rest).trim();
            let mut it = rest.split_whitespace();
            let degree: usize = it
                .next()
                .ok_or_else(|| DbError::parse("nets", lineno + 1, "missing net degree"))?
                .parse()
                .map_err(|_| DbError::parse("nets", lineno + 1, "degree is not a number"))?;
            let name = it.next().map(str::to_string).unwrap_or_else(|| {
                anon += 1;
                format!("net_{anon}")
            });
            current = Some((name, degree, Vec::with_capacity(degree)));
        } else {
            let (_, _, pins) = current
                .as_mut()
                .ok_or_else(|| DbError::parse("nets", lineno + 1, "pin before NetDegree"))?;
            // "cellname I/O/B : dx dy" (offsets optional)
            let mut it = line.split_whitespace();
            let cell = it
                .next()
                .ok_or_else(|| DbError::parse("nets", lineno + 1, "missing cell name"))?
                .to_string();
            let mut dx = 0.0;
            let mut dy = 0.0;
            let rest: Vec<&str> = it.collect();
            if let Some(colon) = rest.iter().position(|t| *t == ":") {
                if rest.len() >= colon + 3 {
                    dx = rest[colon + 1].parse().map_err(|_| {
                        DbError::parse("nets", lineno + 1, "pin x offset is not a number")
                    })?;
                    dy = rest[colon + 2].parse().map_err(|_| {
                        DbError::parse("nets", lineno + 1, "pin y offset is not a number")
                    })?;
                }
            }
            pins.push((cell, Point::new(dx, dy)));
        }
    }
    if let Some((name, _deg, pins)) = current.take() {
        data.nets.push((name, pins));
    }
    Ok(())
}

/// Parses a `.wts` net-weights file: `netname weight` per line.
fn parse_wts(content: &str, data: &mut BookshelfData) -> Result<(), DbError> {
    for (lineno, raw) in content.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.starts_with("UCLA") {
            continue;
        }
        let mut it = line.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| DbError::parse("wts", lineno + 1, "missing net name"))?;
        let weight: f64 = it
            .next()
            .ok_or_else(|| DbError::parse("wts", lineno + 1, "missing weight"))?
            .parse()
            .map_err(|_| DbError::parse("wts", lineno + 1, "weight is not a number"))?;
        if weight < 0.0 {
            return Err(DbError::parse("wts", lineno + 1, "negative net weight"));
        }
        data.weights.insert(name.to_string(), weight);
    }
    Ok(())
}

fn parse_pl(content: &str, data: &mut BookshelfData) -> Result<(), DbError> {
    for (lineno, raw) in content.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.starts_with("UCLA") {
            continue;
        }
        let mut it = line.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| DbError::parse("pl", lineno + 1, "missing cell name"))?;
        let x: f64 = it
            .next()
            .ok_or_else(|| DbError::parse("pl", lineno + 1, "missing x"))?
            .parse()
            .map_err(|_| DbError::parse("pl", lineno + 1, "x is not a number"))?;
        let y: f64 = it
            .next()
            .ok_or_else(|| DbError::parse("pl", lineno + 1, "missing y"))?
            .parse()
            .map_err(|_| DbError::parse("pl", lineno + 1, "y is not a number"))?;
        let fixed = line.contains("/FIXED");
        data.placements.insert(name.to_string(), (x, y, fixed));
    }
    Ok(())
}

fn parse_scl(content: &str, data: &mut BookshelfData) -> Result<(), DbError> {
    let mut y = None;
    let mut height = None;
    let mut site_width = 1.0;
    let mut origin = None;
    let mut num_sites = None;
    for (lineno, raw) in content.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.starts_with("UCLA") || line.starts_with("NumRows") {
            continue;
        }
        if line.starts_with("CoreRow") {
            y = None;
            height = None;
            site_width = 1.0;
            origin = None;
            num_sites = None;
        } else if let Some(v) = parse_kv(line, "Coordinate") {
            y = Some(v);
        } else if let Some(v) = parse_kv(line, "Height") {
            height = Some(v);
        } else if let Some(v) = parse_kv(line, "Sitewidth") {
            site_width = v;
        } else if line.starts_with("SubrowOrigin") {
            // "SubrowOrigin : 0 NumSites : 100"
            let tokens: Vec<&str> = line.split_whitespace().collect();
            for w in tokens.windows(3) {
                if w[0] == "SubrowOrigin" && w[1] == ":" {
                    origin = w[2].parse().ok();
                }
                if w[0] == "NumSites" && w[1] == ":" {
                    num_sites = w[2].parse().ok();
                }
            }
        } else if line.starts_with("End") {
            let (y, height) = match (y, height) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(DbError::parse(
                        "scl",
                        lineno + 1,
                        "row block missing Coordinate or Height",
                    ))
                }
            };
            let x_min = origin.unwrap_or(0.0);
            let sites: f64 = num_sites.unwrap_or(0.0);
            data.rows.push(Row {
                y,
                height,
                x_min,
                x_max: x_min + sites * site_width,
                site_width,
            });
        }
    }
    Ok(())
}

fn assemble(name: &str, data: BookshelfData, target_density: f64) -> Result<Design, DbError> {
    let mut builder = NetlistBuilder::with_capacity(data.nodes.len(), data.nets.len(), 0);
    let mut ids: HashMap<String, CellId> = HashMap::with_capacity(data.nodes.len());
    let mut dims: HashMap<String, (f64, f64)> = HashMap::with_capacity(data.nodes.len());
    for (node_name, w, h, terminal_kw) in &data.nodes {
        let fixed = data.placements.get(node_name).map(|p| p.2).unwrap_or(false);
        let kind = if *terminal_kw || fixed {
            if *w * *h > 0.0 {
                CellKind::Fixed
            } else {
                CellKind::Terminal
            }
        } else {
            CellKind::Movable
        };
        let id = builder.add_cell(node_name.clone(), *w, *h, kind);
        ids.insert(node_name.clone(), id);
        dims.insert(node_name.clone(), (*w, *h));
    }
    for (net_name, pins) in &data.nets {
        let mut resolved = Vec::with_capacity(pins.len());
        for (cell_name, offset) in pins {
            let id = ids
                .get(cell_name)
                .copied()
                .ok_or_else(|| DbError::UnknownCell(cell_name.clone()))?;
            resolved.push((id, *offset));
        }
        let weight = data.weights.get(net_name).copied().unwrap_or(1.0);
        builder.add_net_weighted(net_name.clone(), resolved, weight)?;
    }
    let netlist = builder.finish()?;

    // Region: bounding box of rows if present, else of placements.
    let region = if data.rows.is_empty() {
        let mut r: Option<Rect> = None;
        for (nm, (x, y, _)) in &data.placements {
            let (w, h) = dims.get(nm).copied().unwrap_or((0.0, 0.0));
            let cell_rect = Rect::new(*x, *y, x + w, y + h);
            r = Some(match r {
                Some(acc) => acc.union(&cell_rect),
                None => cell_rect,
            });
        }
        r.ok_or_else(|| DbError::InvalidDesign("no rows and no placements".into()))?
    } else {
        let mut r = data.rows[0].rect();
        for row in &data.rows[1..] {
            r = r.union(&row.rect());
        }
        r
    };

    let mut positions = vec![region.center(); netlist.num_cells()];
    for (nm, (x, y, _)) in &data.placements {
        if let Some(&id) = ids.get(nm) {
            let (w, h) = dims[nm];
            positions[id.index()] = Point::new(x + w * 0.5, y + h * 0.5);
        }
    }

    Design::new(name, netlist, region, data.rows, target_density, positions)
}

/// Reads a Bookshelf benchmark starting from its `.aux` file.
///
/// The target density is not part of the format; callers supply it (the
/// ISPD 2005 contest used 1.0, the paper's flows commonly use 0.9).
///
/// # Errors
///
/// Returns [`DbError::Io`] on file-system problems and [`DbError::Parse`]
/// with file kind and line number on malformed content.
pub fn read_aux(aux_path: &Path, target_density: f64) -> Result<Design, DbError> {
    let aux = fs::read_to_string(aux_path)?;
    let dir = aux_path.parent().unwrap_or_else(|| Path::new("."));
    let mut files: Vec<PathBuf> = Vec::new();
    for token in aux.split_whitespace() {
        if token.contains('.') && !token.ends_with(':') {
            files.push(dir.join(token));
        }
    }
    let mut data = BookshelfData::default();
    let mut found_nodes = false;
    let mut found_nets = false;
    for f in &files {
        let ext = f.extension().and_then(|e| e.to_str()).unwrap_or("");
        let content = match ext {
            "nodes" | "nets" | "pl" | "scl" => fs::read_to_string(f)?,
            // .wts files are optional in many releases.
            "wts" => match fs::read_to_string(f) {
                Ok(c) => c,
                Err(_) => continue,
            },
            _ => continue,
        };
        match ext {
            "nodes" => {
                parse_nodes(&content, &mut data)?;
                found_nodes = true;
            }
            "nets" => {
                parse_nets(&content, &mut data)?;
                found_nets = true;
            }
            "pl" => parse_pl(&content, &mut data)?,
            "scl" => parse_scl(&content, &mut data)?,
            "wts" => parse_wts(&content, &mut data)?,
            _ => unreachable!(),
        }
    }
    if !found_nodes || !found_nets {
        return Err(DbError::parse(
            "aux",
            1,
            "aux file does not name .nodes and .nets files",
        ));
    }
    let name = aux_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design")
        .to_string();
    assemble(&name, data, target_density)
}

/// Writes a design as a Bookshelf benchmark into `dir`, producing
/// `<name>.aux/.nodes/.nets/.pl/.scl`, and returns the `.aux` path.
///
/// # Errors
///
/// Returns [`DbError::Io`] on file-system problems.
pub fn write_design(design: &Design, dir: &Path) -> Result<PathBuf, DbError> {
    fs::create_dir_all(dir)?;
    let name = design.name();
    let nl = design.netlist();

    let mut nodes = String::from("UCLA nodes 1.0\n");
    let terminals = nl.cells().iter().filter(|c| !c.is_movable()).count();
    let _ = writeln!(nodes, "NumNodes : {}", nl.num_cells());
    let _ = writeln!(nodes, "NumTerminals : {terminals}");
    for c in nl.cells() {
        if c.is_movable() {
            let _ = writeln!(nodes, "\t{} {} {}", c.name(), c.width(), c.height());
        } else {
            let _ = writeln!(
                nodes,
                "\t{} {} {} terminal",
                c.name(),
                c.width(),
                c.height()
            );
        }
    }

    let mut nets = String::from("UCLA nets 1.0\n");
    let _ = writeln!(nets, "NumNets : {}", nl.num_nets());
    let _ = writeln!(nets, "NumPins : {}", nl.num_pins());
    for net in nl.nets() {
        let _ = writeln!(nets, "NetDegree : {} {}", net.degree(), net.name());
        for pid in net.pins() {
            let pin = nl.pin(pid);
            let cell = nl.cell(pin.cell);
            let _ = writeln!(
                nets,
                "\t{} B : {:.6} {:.6}",
                cell.name(),
                pin.offset.x,
                pin.offset.y
            );
        }
    }

    let mut pl = String::from("UCLA pl 1.0\n");
    for (i, c) in nl.cells().iter().enumerate() {
        let p = design.positions()[i];
        let lx = p.x - c.width() * 0.5;
        let ly = p.y - c.height() * 0.5;
        if c.is_movable() {
            let _ = writeln!(pl, "{} {:.6} {:.6} : N", c.name(), lx, ly);
        } else {
            let _ = writeln!(pl, "{} {:.6} {:.6} : N /FIXED", c.name(), lx, ly);
        }
    }

    let mut scl = String::from("UCLA scl 1.0\n");
    let _ = writeln!(scl, "NumRows : {}", design.rows().len());
    for row in design.rows() {
        let _ = writeln!(scl, "CoreRow Horizontal");
        let _ = writeln!(scl, "  Coordinate : {}", row.y);
        let _ = writeln!(scl, "  Height : {}", row.height);
        let _ = writeln!(scl, "  Sitewidth : {}", row.site_width);
        let _ = writeln!(scl, "  Sitespacing : {}", row.site_width);
        let _ = writeln!(scl, "  Siteorient : 1");
        let _ = writeln!(scl, "  Sitesymmetry : 1");
        let _ = writeln!(
            scl,
            "  SubrowOrigin : {} NumSites : {}",
            row.x_min,
            row.num_sites()
        );
        let _ = writeln!(scl, "End");
    }

    let aux =
        format!("RowBasedPlacement : {name}.nodes {name}.nets {name}.wts {name}.pl {name}.scl\n");

    fs::write(dir.join(format!("{name}.nodes")), nodes)?;
    fs::write(dir.join(format!("{name}.nets")), nets)?;
    fs::write(dir.join(format!("{name}.pl")), pl)?;
    fs::write(dir.join(format!("{name}.scl")), scl)?;
    let mut wts = String::from("UCLA wts 1.0\n");
    for net in nl.nets() {
        if (net.weight() - 1.0).abs() > 1e-12 {
            let _ = writeln!(wts, "{} {}", net.name(), net.weight());
        }
    }
    fs::write(dir.join(format!("{name}.wts")), wts)?;
    let aux_path = dir.join(format!("{name}.aux"));
    fs::write(&aux_path, aux)?;
    Ok(aux_path)
}

/// Writes only a `.pl` placement file for `design` (the artifact a global
/// placer hands to an external legalizer).
///
/// # Errors
///
/// Returns [`DbError::Io`] on file-system problems.
pub fn write_pl(design: &Design, path: &Path) -> Result<(), DbError> {
    let nl = design.netlist();
    let mut pl = String::from("UCLA pl 1.0\n");
    for (i, c) in nl.cells().iter().enumerate() {
        let p = design.positions()[i];
        let lx = p.x - c.width() * 0.5;
        let ly = p.y - c.height() * 0.5;
        let suffix = if c.is_movable() { "" } else { " /FIXED" };
        let _ = writeln!(pl, "{} {:.6} {:.6} : N{}", c.name(), lx, ly, suffix);
    }
    fs::write(path, pl)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize, SynthesisSpec};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xplace_bookshelf_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_design() {
        let design = synthesize(
            &SynthesisSpec::new("rt", 120, 130)
                .with_seed(3)
                .with_macro_count(2),
        )
        .unwrap();
        let dir = temp_dir("roundtrip");
        let aux = write_design(&design, &dir).unwrap();
        let back = read_aux(&aux, design.target_density()).unwrap();

        assert_eq!(back.netlist().num_cells(), design.netlist().num_cells());
        assert_eq!(back.netlist().num_nets(), design.netlist().num_nets());
        assert_eq!(back.netlist().num_pins(), design.netlist().num_pins());
        assert_eq!(back.rows().len(), design.rows().len());
        // HPWL is a full functional of positions + offsets + connectivity.
        let a = design.total_hpwl();
        let b = back.total_hpwl();
        assert!((a - b).abs() < 1e-6 * a.max(1.0), "hpwl {a} vs {b}");
        // Cell kinds survive.
        for id in design.netlist().cell_ids() {
            let orig = design.netlist().cell(id);
            let echo = back.netlist().cell_by_name(orig.name()).unwrap();
            assert_eq!(back.netlist().cell(echo).kind(), orig.kind());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_handwritten_benchmark() {
        let dir = temp_dir("hand");
        fs::write(
            dir.join("mini.aux"),
            "RowBasedPlacement : mini.nodes mini.nets mini.wts mini.pl mini.scl\n",
        )
        .unwrap();
        fs::write(
            dir.join("mini.nodes"),
            "UCLA nodes 1.0\n# comment\nNumNodes : 3\nNumTerminals : 1\n\
             \ta 2 12\n\tb 4 12\n\tpad 0 0 terminal\n",
        )
        .unwrap();
        fs::write(
            dir.join("mini.nets"),
            "UCLA nets 1.0\nNumNets : 2\nNumPins : 4\n\
             NetDegree : 2 n0\n\ta B : 0.5 0\n\tb B : -1 0\n\
             NetDegree : 2 n1\n\ta B : 0 0\n\tpad B : 0 0\n",
        )
        .unwrap();
        fs::write(
            dir.join("mini.pl"),
            "UCLA pl 1.0\na 10 12 : N\nb 20 24 : N\npad 0 0 : N /FIXED\n",
        )
        .unwrap();
        fs::write(
            dir.join("mini.scl"),
            "UCLA scl 1.0\nNumRows : 2\n\
             CoreRow Horizontal\n  Coordinate : 0\n  Height : 12\n  Sitewidth : 1\n  SubrowOrigin : 0 NumSites : 50\nEnd\n\
             CoreRow Horizontal\n  Coordinate : 12\n  Height : 12\n  Sitewidth : 1\n  SubrowOrigin : 0 NumSites : 50\nEnd\n",
        )
        .unwrap();

        let d = read_aux(&dir.join("mini.aux"), 0.9).unwrap();
        assert_eq!(d.netlist().num_cells(), 3);
        assert_eq!(d.netlist().num_nets(), 2);
        assert_eq!(d.rows().len(), 2);
        // a is movable at lower-left (10,12) with size 2x12 -> center (11,18).
        let a = d.netlist().cell_by_name("a").unwrap();
        assert_eq!(d.position(a), Point::new(11.0, 18.0));
        // pad is a zero-area fixed node -> Terminal.
        let pad = d.netlist().cell_by_name("pad").unwrap();
        assert_eq!(d.netlist().cell(pad).kind(), CellKind::Terminal);
        // Region spans the rows: x in [0,50], y in [0,24].
        assert_eq!(d.region(), Rect::new(0.0, 0.0, 50.0, 24.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wts_weights_are_applied_and_round_trip() {
        let mut data = BookshelfData::default();
        parse_nodes("UCLA nodes 1.0\n a 1 1\n b 1 1\n", &mut data).unwrap();
        parse_nets(
            "NetDegree : 2 crit\n a B : 0 0\n b B : 0 0\nNetDegree : 2 plain\n a B : 0 0\n b B : 0 0\n",
            &mut data,
        )
        .unwrap();
        parse_wts("UCLA wts 1.0\ncrit 3.5\n", &mut data).unwrap();
        parse_pl("a 0 0 : N\nb 5 5 : N\n", &mut data).unwrap();
        let d = assemble("w", data, 0.9).unwrap();
        let nl = d.netlist();
        let crit = nl.nets().find(|n| n.name() == "crit").unwrap();
        let plain = nl.nets().find(|n| n.name() == "plain").unwrap();
        assert_eq!(crit.weight(), 3.5);
        assert_eq!(plain.weight(), 1.0);
    }

    #[test]
    fn malformed_wts_reports_line() {
        let mut data = BookshelfData::default();
        let err = parse_wts("UCLA wts 1.0\nnet_a not_a_number\n", &mut data).unwrap_err();
        assert!(matches!(err, DbError::Parse { line: 2, .. }));
        let err = parse_wts("net_a -2\n", &mut data).unwrap_err();
        assert!(matches!(err, DbError::Parse { .. }));
    }

    #[test]
    fn unknown_cell_in_nets_is_an_error() {
        let mut data = BookshelfData::default();
        parse_nodes("UCLA nodes 1.0\n a 1 1\n", &mut data).unwrap();
        parse_nets("NetDegree : 2 n\n a B : 0 0\n ghost B : 0 0\n", &mut data).unwrap();
        let err = assemble("x", data, 0.9).unwrap_err();
        assert!(matches!(err, DbError::UnknownCell(_)));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let mut data = BookshelfData::default();
        let err = parse_nodes("UCLA nodes 1.0\n a pants 1\n", &mut data).unwrap_err();
        match err {
            DbError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn pin_before_net_degree_is_an_error() {
        let mut data = BookshelfData::default();
        let err = parse_nets("a B : 0 0\n", &mut data).unwrap_err();
        assert!(matches!(err, DbError::Parse { .. }));
    }

    #[test]
    fn missing_files_produce_io_errors() {
        let err = read_aux(Path::new("/nonexistent/foo.aux"), 0.9).unwrap_err();
        assert!(matches!(err, DbError::Io(_)));
    }

    #[test]
    fn write_pl_emits_fixed_markers() {
        let design = synthesize(
            &SynthesisSpec::new("plq", 50, 55)
                .with_seed(4)
                .with_macro_count(1),
        )
        .unwrap();
        let dir = temp_dir("pl");
        let path = dir.join("out.pl");
        write_pl(&design, &path).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("/FIXED"));
        assert!(text.starts_with("UCLA pl 1.0"));
        let _ = fs::remove_dir_all(&dir);
    }
}
