//! The logical netlist: cells, pins and nets with typed ids.
//!
//! A [`Netlist`] is an immutable, index-based structure built once through
//! [`NetlistBuilder`] and then shared by every stage of the flow. Pin
//! connectivity is stored both net-major (each [`Net`] lists its pins) and
//! cell-major (a CSR adjacency from cells to pins) because the wirelength
//! operators walk nets while the preconditioner and legalizer walk cells.

use crate::{DbError, Point};
use std::collections::HashMap;
use std::fmt;
use xplace_testkit::{FromJson, Json, JsonError, ToJson};

macro_rules! typed_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl ToJson for $name {
            fn to_json(&self) -> Json {
                Json::Num(self.0 as f64)
            }
        }

        impl FromJson for $name {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                Ok($name(value.as_usize()? as u32))
            }
        }
    };
}

typed_id!(
    /// Identifier of a cell within a [`Netlist`].
    CellId
);
typed_id!(
    /// Identifier of a net within a [`Netlist`].
    NetId
);
typed_id!(
    /// Identifier of a pin within a [`Netlist`].
    PinId
);

/// How a cell participates in placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A standard cell the placer may move.
    Movable,
    /// A fixed block (macro or pre-placed cell); contributes density but
    /// never moves.
    Fixed,
    /// An I/O terminal: fixed, and excluded from the density system
    /// (zero effective area), but its pins still pull wirelength.
    Terminal,
}

impl CellKind {
    /// Whether the placer may move this cell.
    pub fn is_movable(self) -> bool {
        matches!(self, CellKind::Movable)
    }
}

/// A placeable or fixed circuit element.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    width: f64,
    height: f64,
    kind: CellKind,
}

impl Cell {
    /// Creates a cell description.
    pub fn new(name: impl Into<String>, width: f64, height: f64, kind: CellKind) -> Self {
        Cell {
            name: name.into(),
            width,
            height,
            kind,
        }
    }

    /// The cell's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell width in database units.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Cell height in database units.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Cell area.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// The cell's placement role.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Whether the placer may move this cell.
    pub fn is_movable(&self) -> bool {
        self.kind.is_movable()
    }
}

/// A pin: the connection point of a cell on a net.
///
/// `offset` is measured from the owning cell's **center**; the pin's
/// absolute location is `cell_center + offset`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pin {
    /// Owning cell.
    pub cell: CellId,
    /// Net the pin belongs to.
    pub net: NetId,
    /// Offset from the owning cell's center.
    pub offset: Point,
}

/// A net: a set of electrically connected pins.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    name: String,
    pins: Vec<PinId>,
    weight: f64,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pins on this net.
    pub fn pins(&self) -> &[PinId] {
        &self.pins
    }

    /// Number of pins (the net degree).
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// The net weight (1.0 unless the benchmark specifies otherwise).
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

/// An immutable netlist. Construct with [`NetlistBuilder`].
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    /// CSR start offsets: pins of cell `c` are
    /// `cell_pin_list[cell_pin_start[c]..cell_pin_start[c+1]]`.
    cell_pin_start: Vec<u32>,
    cell_pin_list: Vec<PinId>,
    name_to_cell: HashMap<String, CellId>,
}

impl Netlist {
    /// Number of cells (movable + fixed + terminals).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Number of movable cells.
    pub fn num_movable(&self) -> usize {
        self.cells.iter().filter(|c| c.is_movable()).count()
    }

    /// Borrow a cell by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Borrow a net by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Borrow a pin by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// All cells in id order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets in id order.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All pins in id order.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Iterator over cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Iterator over net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// The pins attached to a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pins_of_cell(&self, id: CellId) -> &[PinId] {
        let s = self.cell_pin_start[id.index()] as usize;
        let e = self.cell_pin_start[id.index() + 1] as usize;
        &self.cell_pin_list[s..e]
    }

    /// The number of nets incident to a cell (the `|S_i|` of the
    /// wirelength preconditioner; pins of the same cell on one net are
    /// counted once per pin, matching DREAMPlace's convention).
    pub fn cell_degree(&self, id: CellId) -> usize {
        self.pins_of_cell(id).len()
    }

    /// Looks up a cell id by instance name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.name_to_cell.get(name).copied()
    }

    /// Total area of movable cells.
    pub fn movable_area(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.is_movable())
            .map(Cell::area)
            .sum()
    }

    /// Average degree over all nets.
    pub fn average_net_degree(&self) -> f64 {
        if self.nets.is_empty() {
            0.0
        } else {
            self.pins.len() as f64 / self.nets.len() as f64
        }
    }
}

impl ToJson for CellKind {
    fn to_json(&self) -> Json {
        Json::str(match self {
            CellKind::Movable => "Movable",
            CellKind::Fixed => "Fixed",
            CellKind::Terminal => "Terminal",
        })
    }
}

impl FromJson for CellKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "Movable" => Ok(CellKind::Movable),
            "Fixed" => Ok(CellKind::Fixed),
            "Terminal" => Ok(CellKind::Terminal),
            other => Err(JsonError(format!("unknown cell kind `{other}`"))),
        }
    }
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("width", Json::Num(self.width)),
            ("height", Json::Num(self.height)),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for Cell {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Cell {
            name: value.field("name")?.as_str()?.to_string(),
            width: value.field("width")?.as_f64()?,
            height: value.field("height")?.as_f64()?,
            kind: CellKind::from_json(value.field("kind")?)?,
        })
    }
}

impl ToJson for Pin {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", self.cell.to_json()),
            ("net", self.net.to_json()),
            ("offset", self.offset.to_json()),
        ])
    }
}

impl FromJson for Pin {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Pin {
            cell: CellId::from_json(value.field("cell")?)?,
            net: NetId::from_json(value.field("net")?)?,
            offset: Point::from_json(value.field("offset")?)?,
        })
    }
}

impl ToJson for Net {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("pins", self.pins.to_json()),
            ("weight", Json::Num(self.weight)),
        ])
    }
}

impl FromJson for Net {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Net {
            name: value.field("name")?.as_str()?.to_string(),
            pins: Vec::from_json(value.field("pins")?)?,
            weight: value.field("weight")?.as_f64()?,
        })
    }
}

impl ToJson for Netlist {
    fn to_json(&self) -> Json {
        // The CSR adjacency and the name map are derived data: encode only
        // the primary cells/nets/pins and rebuild the rest on decode.
        Json::obj([
            ("cells", self.cells.to_json()),
            ("nets", self.nets.to_json()),
            ("pins", self.pins.to_json()),
        ])
    }
}

impl FromJson for Netlist {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let cells: Vec<Cell> = Vec::from_json(value.field("cells")?)?;
        let nets: Vec<Net> = Vec::from_json(value.field("nets")?)?;
        let pins: Vec<Pin> = Vec::from_json(value.field("pins")?)?;
        for pin in &pins {
            if pin.cell.index() >= cells.len() {
                return Err(JsonError(format!(
                    "pin references cell {} out of range",
                    pin.cell
                )));
            }
        }
        let name_to_cell = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), CellId(i as u32)))
            .collect();
        let mut counts = vec![0u32; cells.len() + 1];
        for pin in &pins {
            counts[pin.cell.index() + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let cell_pin_start = counts.clone();
        let mut cursor = counts;
        let mut cell_pin_list = vec![PinId(0); pins.len()];
        for (i, pin) in pins.iter().enumerate() {
            let slot = cursor[pin.cell.index()] as usize;
            cell_pin_list[slot] = PinId(i as u32);
            cursor[pin.cell.index()] += 1;
        }
        Ok(Netlist {
            cells,
            nets,
            pins,
            cell_pin_start,
            cell_pin_list,
            name_to_cell,
        })
    }
}

/// Incrementally builds a [`Netlist`].
///
/// ```
/// use xplace_db::netlist::{CellKind, NetlistBuilder};
/// use xplace_db::Point;
///
/// # fn main() -> Result<(), xplace_db::DbError> {
/// let mut b = NetlistBuilder::new();
/// let a = b.add_cell("a", 2.0, 1.0, CellKind::Movable);
/// let c = b.add_cell("c", 3.0, 1.0, CellKind::Fixed);
/// b.add_net("n1", vec![(a, Point::default()), (c, Point::new(0.5, 0.0))])?;
/// let netlist = b.finish()?;
/// assert_eq!(netlist.num_cells(), 2);
/// assert_eq!(netlist.net(xplace_db::NetId(0)).degree(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
    name_to_cell: HashMap<String, CellId>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints.
    pub fn with_capacity(cells: usize, nets: usize, pins: usize) -> Self {
        NetlistBuilder {
            cells: Vec::with_capacity(cells),
            nets: Vec::with_capacity(nets),
            pins: Vec::with_capacity(pins),
            name_to_cell: HashMap::with_capacity(cells),
        }
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Adds a cell and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name already exists.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
    ) -> CellId {
        let name = name.into();
        let id = CellId(self.cells.len() as u32);
        let prev = self.name_to_cell.insert(name.clone(), id);
        assert!(prev.is_none(), "duplicate cell name `{name}`");
        self.cells.push(Cell {
            name,
            width,
            height,
            kind,
        });
        id
    }

    /// Adds a weighted net connecting `(cell, pin_offset)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownCell`] if any cell id is out of range and
    /// [`DbError::InvalidDesign`] for a net with no pins.
    pub fn add_net_weighted(
        &mut self,
        name: impl Into<String>,
        pins: Vec<(CellId, Point)>,
        weight: f64,
    ) -> Result<NetId, DbError> {
        let name = name.into();
        if pins.is_empty() {
            return Err(DbError::InvalidDesign(format!("net `{name}` has no pins")));
        }
        let net_id = NetId(self.nets.len() as u32);
        let mut pin_ids = Vec::with_capacity(pins.len());
        for (cell, offset) in pins {
            if cell.index() >= self.cells.len() {
                return Err(DbError::UnknownCell(format!(
                    "cell id {cell} in net `{name}`"
                )));
            }
            let pin_id = PinId(self.pins.len() as u32);
            self.pins.push(Pin {
                cell,
                net: net_id,
                offset,
            });
            pin_ids.push(pin_id);
        }
        self.nets.push(Net {
            name,
            pins: pin_ids,
            weight,
        });
        Ok(net_id)
    }

    /// Adds a unit-weight net.
    ///
    /// # Errors
    ///
    /// See [`NetlistBuilder::add_net_weighted`].
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        pins: Vec<(CellId, Point)>,
    ) -> Result<NetId, DbError> {
        self.add_net_weighted(name, pins, 1.0)
    }

    /// Finalizes the netlist, building the cell-to-pin adjacency.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidDesign`] if any cell has a non-positive
    /// dimension (terminals may have zero size).
    pub fn finish(self) -> Result<Netlist, DbError> {
        for cell in &self.cells {
            let ok = match cell.kind {
                CellKind::Terminal => cell.width >= 0.0 && cell.height >= 0.0,
                _ => cell.width > 0.0 && cell.height > 0.0,
            };
            if !ok {
                return Err(DbError::InvalidDesign(format!(
                    "cell `{}` has non-positive dimensions {}x{}",
                    cell.name, cell.width, cell.height
                )));
            }
        }
        let mut counts = vec![0u32; self.cells.len() + 1];
        for pin in &self.pins {
            counts[pin.cell.index() + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let cell_pin_start = counts.clone();
        let mut cursor = counts;
        let mut cell_pin_list = vec![PinId(0); self.pins.len()];
        for (i, pin) in self.pins.iter().enumerate() {
            let slot = cursor[pin.cell.index()] as usize;
            cell_pin_list[slot] = PinId(i as u32);
            cursor[pin.cell.index()] += 1;
        }
        Ok(Netlist {
            cells: self.cells,
            nets: self.nets,
            pins: self.pins,
            cell_pin_start,
            cell_pin_list,
            name_to_cell: self.name_to_cell,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let c = b.add_cell("c", 2.0, 1.0, CellKind::Movable);
        let t = b.add_cell("t", 0.0, 0.0, CellKind::Terminal);
        b.add_net("n0", vec![(a, Point::default()), (c, Point::new(0.5, 0.0))])
            .unwrap();
        b.add_net(
            "n1",
            vec![(a, Point::new(-0.25, 0.0)), (t, Point::default())],
        )
        .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let nl = tiny();
        assert_eq!(nl.num_cells(), 3);
        assert_eq!(nl.num_nets(), 2);
        assert_eq!(nl.num_pins(), 4);
        assert_eq!(nl.num_movable(), 2);
        assert_eq!(nl.cell_by_name("c"), Some(CellId(1)));
        assert_eq!(nl.cell_by_name("zz"), None);
    }

    #[test]
    fn cell_pin_adjacency_is_consistent() {
        let nl = tiny();
        let a_pins = nl.pins_of_cell(CellId(0));
        assert_eq!(a_pins.len(), 2);
        for &p in a_pins {
            assert_eq!(nl.pin(p).cell, CellId(0));
        }
        assert_eq!(nl.cell_degree(CellId(2)), 1);
    }

    #[test]
    fn net_major_and_cell_major_views_agree() {
        let nl = tiny();
        let from_nets: usize = nl.nets().iter().map(Net::degree).sum();
        let from_cells: usize = nl.cell_ids().map(|c| nl.pins_of_cell(c).len()).sum();
        assert_eq!(from_nets, from_cells);
        assert_eq!(from_nets, nl.num_pins());
    }

    #[test]
    fn empty_net_is_rejected() {
        let mut b = NetlistBuilder::new();
        assert!(matches!(
            b.add_net("bad", vec![]),
            Err(DbError::InvalidDesign(_))
        ));
    }

    #[test]
    fn unknown_cell_is_rejected() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let err = b
            .add_net("n", vec![(CellId(5), Point::default())])
            .unwrap_err();
        assert!(matches!(err, DbError::UnknownCell(_)));
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn duplicate_names_panic() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
    }

    #[test]
    fn zero_area_movable_cell_is_rejected() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 0.0, 1.0, CellKind::Movable);
        assert!(matches!(b.finish(), Err(DbError::InvalidDesign(_))));
    }

    #[test]
    fn zero_area_terminal_is_allowed() {
        let mut b = NetlistBuilder::new();
        b.add_cell("pad", 0.0, 0.0, CellKind::Terminal);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn areas_and_degrees() {
        let nl = tiny();
        assert_eq!(nl.movable_area(), 3.0);
        assert_eq!(nl.average_net_degree(), 2.0);
        assert_eq!(nl.net(NetId(0)).weight(), 1.0);
    }

    #[test]
    fn typed_ids_display_and_convert() {
        let id = CellId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "CellId(7)");
    }

    #[test]
    fn netlist_json_round_trip_rebuilds_adjacency() {
        let nl = tiny();
        let decoded = Netlist::from_json_str(&nl.to_json_string()).unwrap();
        assert_eq!(decoded.cells(), nl.cells());
        assert_eq!(decoded.nets(), nl.nets());
        assert_eq!(decoded.pins(), nl.pins());
        // Derived structures are rebuilt, not transported.
        assert_eq!(decoded.cell_by_name("c"), Some(CellId(1)));
        for c in nl.cell_ids() {
            assert_eq!(decoded.pins_of_cell(c), nl.pins_of_cell(c));
        }
    }

    #[test]
    fn netlist_decode_rejects_dangling_pin() {
        let text = r#"{"cells":[],"nets":[],"pins":[
            {"cell":3,"net":0,"offset":{"x":0,"y":0}}]}"#;
        assert!(Netlist::from_json_str(text).is_err());
    }
}
