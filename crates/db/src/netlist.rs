//! The logical netlist: cells, pins and nets with typed ids.
//!
//! A [`Netlist`] is an immutable, index-based structure built once through
//! [`NetlistBuilder`] and then shared by every stage of the flow. Pin data
//! is stored struct-of-arrays in **net-major CSR form**: the pins of net
//! `e` occupy the contiguous span `net_start[e]..net_start[e+1]` of the
//! flat `pin_cell`/`pin_net`/`pin_dx`/`pin_dy` arrays, mirroring the
//! cell-major CSR (`cell_pin_start`/`cell_pin_list`) that the
//! preconditioner and legalizer walk. The wirelength and density kernels
//! stream the net-major arrays contiguously with no per-net indirection;
//! [`NetRef`] and the by-value [`Pin`] are cheap views reconstructed from
//! the arrays for call sites that want the object-shaped API.

use crate::{DbError, Point};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use xplace_testkit::{FromJson, Json, JsonError, ToJson};

macro_rules! typed_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl ToJson for $name {
            fn to_json(&self) -> Json {
                Json::Num(self.0 as f64)
            }
        }

        impl FromJson for $name {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                Ok($name(value.as_usize()? as u32))
            }
        }
    };
}

typed_id!(
    /// Identifier of a cell within a [`Netlist`].
    CellId
);
typed_id!(
    /// Identifier of a net within a [`Netlist`].
    NetId
);
typed_id!(
    /// Identifier of a pin within a [`Netlist`]. Pin ids are net-major:
    /// the pins of net `e` are the consecutive ids of its CSR span.
    PinId
);

/// How a cell participates in placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A standard cell the placer may move.
    Movable,
    /// A fixed block (macro or pre-placed cell); contributes density but
    /// never moves.
    Fixed,
    /// An I/O terminal: fixed, and excluded from the density system
    /// (zero effective area), but its pins still pull wirelength.
    Terminal,
}

impl CellKind {
    /// Whether the placer may move this cell.
    pub fn is_movable(self) -> bool {
        matches!(self, CellKind::Movable)
    }
}

/// A placeable or fixed circuit element.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    width: f64,
    height: f64,
    kind: CellKind,
}

impl Cell {
    /// Creates a cell description.
    pub fn new(name: impl Into<String>, width: f64, height: f64, kind: CellKind) -> Self {
        Cell {
            name: name.into(),
            width,
            height,
            kind,
        }
    }

    /// The cell's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell width in database units.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Cell height in database units.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Cell area.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// The cell's placement role.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Whether the placer may move this cell.
    pub fn is_movable(&self) -> bool {
        self.kind.is_movable()
    }
}

/// A pin: the connection point of a cell on a net.
///
/// `offset` is measured from the owning cell's **center**; the pin's
/// absolute location is `cell_center + offset`. Materialized by value
/// from the netlist's flat pin arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pin {
    /// Owning cell.
    pub cell: CellId,
    /// Net the pin belongs to.
    pub net: NetId,
    /// Offset from the owning cell's center.
    pub offset: Point,
}

/// A borrowed view of one net: name, weight and the CSR pin span.
#[derive(Debug, Clone, Copy)]
pub struct NetRef<'a> {
    nl: &'a Netlist,
    id: NetId,
}

impl<'a> NetRef<'a> {
    /// The net's id.
    pub fn id(&self) -> NetId {
        self.id
    }

    /// The net's name.
    pub fn name(&self) -> &'a str {
        &self.nl.net_names[self.id.index()]
    }

    /// Number of pins (the net degree).
    pub fn degree(&self) -> usize {
        self.pin_range().len()
    }

    /// The net weight (1.0 unless the benchmark specifies otherwise).
    pub fn weight(&self) -> f64 {
        self.nl.net_weight[self.id.index()]
    }

    /// The net's span in the flat pin arrays.
    pub fn pin_range(&self) -> Range<usize> {
        self.nl.net_pin_range(self.id)
    }

    /// Iterator over the net's pin ids (consecutive, net-major).
    pub fn pins(&self) -> impl ExactSizeIterator<Item = PinId> + 'a {
        self.pin_range().map(|i| PinId(i as u32))
    }
}

/// An immutable netlist in struct-of-arrays form. Construct with
/// [`NetlistBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    cells: Vec<Cell>,
    net_names: Vec<String>,
    net_weight: Vec<f64>,
    /// Net-major CSR starts: pins of net `e` occupy the flat-array span
    /// `net_start[e]..net_start[e+1]`. Length `num_nets() + 1`.
    net_start: Vec<u32>,
    /// Owning cell per pin, net-major.
    pin_cell: Vec<CellId>,
    /// Owning net per pin (redundant with the spans; kept so `pin()` is
    /// O(1) and the cell-major walk recovers nets without a search).
    pin_net: Vec<NetId>,
    /// Pin x-offset from the owning cell's center, net-major.
    pin_dx: Vec<f64>,
    /// Pin y-offset from the owning cell's center, net-major.
    pin_dy: Vec<f64>,
    /// Cell-major CSR starts: pins of cell `c` are
    /// `cell_pin_list[cell_pin_start[c]..cell_pin_start[c+1]]`.
    cell_pin_start: Vec<u32>,
    cell_pin_list: Vec<PinId>,
    name_to_cell: HashMap<String, CellId>,
}

impl Default for Netlist {
    fn default() -> Self {
        Netlist {
            cells: Vec::new(),
            net_names: Vec::new(),
            net_weight: Vec::new(),
            net_start: vec![0],
            pin_cell: Vec::new(),
            pin_net: Vec::new(),
            pin_dx: Vec::new(),
            pin_dy: Vec::new(),
            cell_pin_start: vec![0],
            cell_pin_list: Vec::new(),
            name_to_cell: HashMap::new(),
        }
    }
}

impl Netlist {
    /// Number of cells (movable + fixed + terminals).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// Number of pins.
    pub fn num_pins(&self) -> usize {
        self.pin_cell.len()
    }

    /// Number of movable cells.
    pub fn num_movable(&self) -> usize {
        self.cells.iter().filter(|c| c.is_movable()).count()
    }

    /// Borrow a cell by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// View a net by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> NetRef<'_> {
        assert!(id.index() < self.num_nets(), "net id {id} out of range");
        NetRef { nl: self, id }
    }

    /// Materialize a pin by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pin(&self, id: PinId) -> Pin {
        let i = id.index();
        Pin {
            cell: self.pin_cell[i],
            net: self.pin_net[i],
            offset: Point::new(self.pin_dx[i], self.pin_dy[i]),
        }
    }

    /// All cells in id order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Iterator over net views in id order.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = NetRef<'_>> {
        (0..self.num_nets() as u32).map(move |e| NetRef {
            nl: self,
            id: NetId(e),
        })
    }

    /// Iterator over cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Iterator over net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.num_nets() as u32).map(NetId)
    }

    /// The net-major CSR start offsets (length `num_nets() + 1`).
    pub fn net_start(&self) -> &[u32] {
        &self.net_start
    }

    /// The flat span of net `id` in the pin arrays.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net_pin_range(&self, id: NetId) -> Range<usize> {
        self.net_start[id.index()] as usize..self.net_start[id.index() + 1] as usize
    }

    /// Owning cell per pin, net-major.
    pub fn pin_cells(&self) -> &[CellId] {
        &self.pin_cell
    }

    /// Owning net per pin, net-major.
    pub fn pin_nets(&self) -> &[NetId] {
        &self.pin_net
    }

    /// Pin x-offsets from the owning cell's center, net-major.
    pub fn pin_dx(&self) -> &[f64] {
        &self.pin_dx
    }

    /// Pin y-offsets from the owning cell's center, net-major.
    pub fn pin_dy(&self) -> &[f64] {
        &self.pin_dy
    }

    /// Per-net weights in id order.
    pub fn net_weights(&self) -> &[f64] {
        &self.net_weight
    }

    /// The pins attached to a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pins_of_cell(&self, id: CellId) -> &[PinId] {
        let s = self.cell_pin_start[id.index()] as usize;
        let e = self.cell_pin_start[id.index() + 1] as usize;
        &self.cell_pin_list[s..e]
    }

    /// The number of nets incident to a cell (the `|S_i|` of the
    /// wirelength preconditioner; pins of the same cell on one net are
    /// counted once per pin, matching DREAMPlace's convention).
    pub fn cell_degree(&self, id: CellId) -> usize {
        self.pins_of_cell(id).len()
    }

    /// Looks up a cell id by instance name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.name_to_cell.get(name).copied()
    }

    /// Total area of movable cells.
    pub fn movable_area(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.is_movable())
            .map(Cell::area)
            .sum()
    }

    /// Average degree over all nets.
    pub fn average_net_degree(&self) -> f64 {
        if self.num_nets() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_nets() as f64
        }
    }

    /// Builds the cell-major CSR and name map from the net-major arrays.
    fn finalize(
        cells: Vec<Cell>,
        net_names: Vec<String>,
        net_weight: Vec<f64>,
        net_start: Vec<u32>,
        pin_cell: Vec<CellId>,
        pin_net: Vec<NetId>,
        pin_dx: Vec<f64>,
        pin_dy: Vec<f64>,
        name_to_cell: HashMap<String, CellId>,
    ) -> Netlist {
        let mut counts = vec![0u32; cells.len() + 1];
        for cell in &pin_cell {
            counts[cell.index() + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let cell_pin_start = counts.clone();
        let mut cursor = counts;
        let mut cell_pin_list = vec![PinId(0); pin_cell.len()];
        for (i, cell) in pin_cell.iter().enumerate() {
            let slot = cursor[cell.index()] as usize;
            cell_pin_list[slot] = PinId(i as u32);
            cursor[cell.index()] += 1;
        }
        Netlist {
            cells,
            net_names,
            net_weight,
            net_start,
            pin_cell,
            pin_net,
            pin_dx,
            pin_dy,
            cell_pin_start,
            cell_pin_list,
            name_to_cell,
        }
    }
}

impl ToJson for CellKind {
    fn to_json(&self) -> Json {
        Json::str(match self {
            CellKind::Movable => "Movable",
            CellKind::Fixed => "Fixed",
            CellKind::Terminal => "Terminal",
        })
    }
}

impl FromJson for CellKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "Movable" => Ok(CellKind::Movable),
            "Fixed" => Ok(CellKind::Fixed),
            "Terminal" => Ok(CellKind::Terminal),
            other => Err(JsonError(format!("unknown cell kind `{other}`"))),
        }
    }
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("width", Json::Num(self.width)),
            ("height", Json::Num(self.height)),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for Cell {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Cell {
            name: value.field("name")?.as_str()?.to_string(),
            width: value.field("width")?.as_f64()?,
            height: value.field("height")?.as_f64()?,
            kind: CellKind::from_json(value.field("kind")?)?,
        })
    }
}

impl ToJson for Pin {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cell", self.cell.to_json()),
            ("net", self.net.to_json()),
            ("offset", self.offset.to_json()),
        ])
    }
}

impl FromJson for Pin {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Pin {
            cell: CellId::from_json(value.field("cell")?)?,
            net: NetId::from_json(value.field("net")?)?,
            offset: Point::from_json(value.field("offset")?)?,
        })
    }
}

impl ToJson for Netlist {
    fn to_json(&self) -> Json {
        // The wire format predates the SoA layout: cells, object-shaped
        // nets (with explicit pin-id lists) and object-shaped pins. The
        // CSR adjacency and the name map are derived data, rebuilt on
        // decode.
        let nets = Json::Arr(
            self.nets()
                .map(|net| {
                    Json::obj([
                        ("name", Json::str(net.name())),
                        ("pins", net.pins().collect::<Vec<_>>().to_json()),
                        ("weight", Json::Num(net.weight())),
                    ])
                })
                .collect(),
        );
        let pins = Json::Arr(
            (0..self.num_pins())
                .map(|i| self.pin(PinId(i as u32)).to_json())
                .collect(),
        );
        Json::obj([
            ("cells", self.cells.to_json()),
            ("nets", nets),
            ("pins", pins),
        ])
    }
}

impl FromJson for Netlist {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let cells: Vec<Cell> = Vec::from_json(value.field("cells")?)?;
        let pins: Vec<Pin> = Vec::from_json(value.field("pins")?)?;
        for pin in &pins {
            if pin.cell.index() >= cells.len() {
                return Err(JsonError(format!(
                    "pin references cell {} out of range",
                    pin.cell
                )));
            }
        }
        let net_values = value.field("nets")?.as_arr()?;
        let mut net_names = Vec::with_capacity(net_values.len());
        let mut net_weight = Vec::with_capacity(net_values.len());
        let mut net_start: Vec<u32> = Vec::with_capacity(net_values.len() + 1);
        net_start.push(0);
        let mut pin_cell = Vec::with_capacity(pins.len());
        let mut pin_net = Vec::with_capacity(pins.len());
        let mut pin_dx = Vec::with_capacity(pins.len());
        let mut pin_dy = Vec::with_capacity(pins.len());
        for (e, net) in net_values.iter().enumerate() {
            let name = net.field("name")?.as_str()?.to_string();
            let ids: Vec<PinId> = Vec::from_json(net.field("pins")?)?;
            for id in &ids {
                // Pin ids must be the net's own contiguous net-major span
                // (the only shape the builder and encoder ever produce):
                // that is what makes the flat arrays a valid CSR.
                if id.index() != pin_cell.len() {
                    return Err(JsonError(format!(
                        "net `{name}` pin ids are not net-major contiguous \
                         (expected pin {}, found {id})",
                        pin_cell.len()
                    )));
                }
                let pin = &pins[id.index()];
                pin_cell.push(pin.cell);
                pin_net.push(NetId(e as u32));
                pin_dx.push(pin.offset.x);
                pin_dy.push(pin.offset.y);
            }
            net_names.push(name);
            net_weight.push(net.field("weight")?.as_f64()?);
            net_start.push(pin_cell.len() as u32);
        }
        if pin_cell.len() != pins.len() {
            return Err(JsonError(format!(
                "{} of {} pins are not referenced by any net",
                pins.len() - pin_cell.len(),
                pins.len()
            )));
        }
        let name_to_cell = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), CellId(i as u32)))
            .collect();
        Ok(Netlist::finalize(
            cells,
            net_names,
            net_weight,
            net_start,
            pin_cell,
            pin_net,
            pin_dx,
            pin_dy,
            name_to_cell,
        ))
    }
}

/// Incrementally builds a [`Netlist`].
///
/// ```
/// use xplace_db::netlist::{CellKind, NetlistBuilder};
/// use xplace_db::Point;
///
/// # fn main() -> Result<(), xplace_db::DbError> {
/// let mut b = NetlistBuilder::new();
/// let a = b.add_cell("a", 2.0, 1.0, CellKind::Movable);
/// let c = b.add_cell("c", 3.0, 1.0, CellKind::Fixed);
/// b.add_net("n1", vec![(a, Point::default()), (c, Point::new(0.5, 0.0))])?;
/// let netlist = b.finish()?;
/// assert_eq!(netlist.num_cells(), 2);
/// assert_eq!(netlist.net(xplace_db::NetId(0)).degree(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    cells: Vec<Cell>,
    net_names: Vec<String>,
    net_weight: Vec<f64>,
    net_start: Vec<u32>,
    pin_cell: Vec<CellId>,
    pin_net: Vec<NetId>,
    pin_dx: Vec<f64>,
    pin_dy: Vec<f64>,
    name_to_cell: HashMap<String, CellId>,
}

impl Default for NetlistBuilder {
    fn default() -> Self {
        Self::with_capacity(0, 0, 0)
    }
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints.
    pub fn with_capacity(cells: usize, nets: usize, pins: usize) -> Self {
        let mut net_start = Vec::with_capacity(nets + 1);
        net_start.push(0);
        NetlistBuilder {
            cells: Vec::with_capacity(cells),
            net_names: Vec::with_capacity(nets),
            net_weight: Vec::with_capacity(nets),
            net_start,
            pin_cell: Vec::with_capacity(pins),
            pin_net: Vec::with_capacity(pins),
            pin_dx: Vec::with_capacity(pins),
            pin_dy: Vec::with_capacity(pins),
            name_to_cell: HashMap::with_capacity(cells),
        }
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Adds a cell and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name already exists.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
    ) -> CellId {
        let name = name.into();
        let id = CellId(self.cells.len() as u32);
        let prev = self.name_to_cell.insert(name.clone(), id);
        assert!(prev.is_none(), "duplicate cell name `{name}`");
        self.cells.push(Cell {
            name,
            width,
            height,
            kind,
        });
        id
    }

    /// Adds a weighted net connecting `(cell, pin_offset)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownCell`] if any cell id is out of range and
    /// [`DbError::InvalidDesign`] for a net with no pins.
    pub fn add_net_weighted(
        &mut self,
        name: impl Into<String>,
        pins: Vec<(CellId, Point)>,
        weight: f64,
    ) -> Result<NetId, DbError> {
        let name = name.into();
        if pins.is_empty() {
            return Err(DbError::InvalidDesign(format!("net `{name}` has no pins")));
        }
        for (cell, _) in &pins {
            if cell.index() >= self.cells.len() {
                return Err(DbError::UnknownCell(format!(
                    "cell id {cell} in net `{name}`"
                )));
            }
        }
        let net_id = NetId(self.net_names.len() as u32);
        for (cell, offset) in pins {
            self.pin_cell.push(cell);
            self.pin_net.push(net_id);
            self.pin_dx.push(offset.x);
            self.pin_dy.push(offset.y);
        }
        self.net_names.push(name);
        self.net_weight.push(weight);
        self.net_start.push(self.pin_cell.len() as u32);
        Ok(net_id)
    }

    /// Adds a unit-weight net.
    ///
    /// # Errors
    ///
    /// See [`NetlistBuilder::add_net_weighted`].
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        pins: Vec<(CellId, Point)>,
    ) -> Result<NetId, DbError> {
        self.add_net_weighted(name, pins, 1.0)
    }

    /// Finalizes the netlist, building the cell-to-pin adjacency.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::InvalidDesign`] if any cell has a non-positive
    /// dimension (terminals may have zero size).
    pub fn finish(self) -> Result<Netlist, DbError> {
        for cell in &self.cells {
            let ok = match cell.kind {
                CellKind::Terminal => cell.width >= 0.0 && cell.height >= 0.0,
                _ => cell.width > 0.0 && cell.height > 0.0,
            };
            if !ok {
                return Err(DbError::InvalidDesign(format!(
                    "cell `{}` has non-positive dimensions {}x{}",
                    cell.name, cell.width, cell.height
                )));
            }
        }
        Ok(Netlist::finalize(
            self.cells,
            self.net_names,
            self.net_weight,
            self.net_start,
            self.pin_cell,
            self.pin_net,
            self.pin_dx,
            self.pin_dy,
            self.name_to_cell,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let c = b.add_cell("c", 2.0, 1.0, CellKind::Movable);
        let t = b.add_cell("t", 0.0, 0.0, CellKind::Terminal);
        b.add_net("n0", vec![(a, Point::default()), (c, Point::new(0.5, 0.0))])
            .unwrap();
        b.add_net(
            "n1",
            vec![(a, Point::new(-0.25, 0.0)), (t, Point::default())],
        )
        .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let nl = tiny();
        assert_eq!(nl.num_cells(), 3);
        assert_eq!(nl.num_nets(), 2);
        assert_eq!(nl.num_pins(), 4);
        assert_eq!(nl.num_movable(), 2);
        assert_eq!(nl.cell_by_name("c"), Some(CellId(1)));
        assert_eq!(nl.cell_by_name("zz"), None);
    }

    #[test]
    fn cell_pin_adjacency_is_consistent() {
        let nl = tiny();
        let a_pins = nl.pins_of_cell(CellId(0));
        assert_eq!(a_pins.len(), 2);
        for &p in a_pins {
            assert_eq!(nl.pin(p).cell, CellId(0));
        }
        assert_eq!(nl.cell_degree(CellId(2)), 1);
    }

    #[test]
    fn net_major_and_cell_major_views_agree() {
        let nl = tiny();
        let from_nets: usize = nl.nets().map(|n| n.degree()).sum();
        let from_cells: usize = nl.cell_ids().map(|c| nl.pins_of_cell(c).len()).sum();
        assert_eq!(from_nets, from_cells);
        assert_eq!(from_nets, nl.num_pins());
    }

    #[test]
    fn csr_spans_are_monotone_and_cover_all_pins() {
        let nl = tiny();
        assert_eq!(nl.net_start().len(), nl.num_nets() + 1);
        assert_eq!(nl.net_start()[0], 0);
        for w in nl.net_start().windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*nl.net_start().last().unwrap() as usize, nl.num_pins());
        // pin_net agrees with the span that contains the pin.
        for net in nl.nets() {
            for pid in net.pins() {
                assert_eq!(nl.pin(pid).net, net.id());
                assert_eq!(nl.pin_nets()[pid.index()], net.id());
            }
        }
    }

    #[test]
    fn flat_arrays_match_materialized_pins() {
        let nl = tiny();
        for i in 0..nl.num_pins() {
            let pin = nl.pin(PinId(i as u32));
            assert_eq!(nl.pin_cells()[i], pin.cell);
            assert_eq!(nl.pin_dx()[i], pin.offset.x);
            assert_eq!(nl.pin_dy()[i], pin.offset.y);
        }
        assert_eq!(nl.net_weights(), &[1.0, 1.0]);
    }

    #[test]
    fn empty_net_is_rejected() {
        let mut b = NetlistBuilder::new();
        assert!(matches!(
            b.add_net("bad", vec![]),
            Err(DbError::InvalidDesign(_))
        ));
    }

    #[test]
    fn unknown_cell_is_rejected() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let err = b
            .add_net("n", vec![(CellId(5), Point::default())])
            .unwrap_err();
        assert!(matches!(err, DbError::UnknownCell(_)));
    }

    #[test]
    fn rejected_net_leaves_the_builder_consistent() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        // A net whose *second* pin is bad must not leave half a span.
        assert!(b
            .add_net(
                "bad",
                vec![(a, Point::default()), (CellId(9), Point::default())]
            )
            .is_err());
        b.add_net("ok", vec![(a, Point::default()), (a, Point::new(0.5, 0.0))])
            .unwrap();
        let nl = b.finish().unwrap();
        assert_eq!(nl.num_nets(), 1);
        assert_eq!(nl.num_pins(), 2);
        assert_eq!(nl.net(NetId(0)).degree(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn duplicate_names_panic() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
    }

    #[test]
    fn zero_area_movable_cell_is_rejected() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 0.0, 1.0, CellKind::Movable);
        assert!(matches!(b.finish(), Err(DbError::InvalidDesign(_))));
    }

    #[test]
    fn zero_area_terminal_is_allowed() {
        let mut b = NetlistBuilder::new();
        b.add_cell("pad", 0.0, 0.0, CellKind::Terminal);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn areas_and_degrees() {
        let nl = tiny();
        assert_eq!(nl.movable_area(), 3.0);
        assert_eq!(nl.average_net_degree(), 2.0);
        assert_eq!(nl.net(NetId(0)).weight(), 1.0);
    }

    #[test]
    fn typed_ids_display_and_convert() {
        let id = CellId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "CellId(7)");
    }

    #[test]
    fn netlist_json_round_trip_rebuilds_adjacency() {
        let nl = tiny();
        let decoded = Netlist::from_json_str(&nl.to_json_string()).unwrap();
        assert_eq!(decoded, nl);
        // Derived structures are rebuilt, not transported.
        assert_eq!(decoded.cell_by_name("c"), Some(CellId(1)));
        for c in nl.cell_ids() {
            assert_eq!(decoded.pins_of_cell(c), nl.pins_of_cell(c));
        }
    }

    #[test]
    fn netlist_decode_rejects_dangling_pin() {
        let text = r#"{"cells":[],"nets":[],"pins":[
            {"cell":3,"net":0,"offset":{"x":0,"y":0}}]}"#;
        assert!(Netlist::from_json_str(text).is_err());
    }

    #[test]
    fn netlist_decode_rejects_non_contiguous_pin_ids() {
        // Net lists its pins out of net-major order: not a valid CSR.
        let text = r#"{"cells":[{"name":"a","width":1,"height":1,"kind":"Movable"}],
            "nets":[{"name":"n","pins":[1,0],"weight":1}],
            "pins":[{"cell":0,"net":0,"offset":{"x":0,"y":0}},
                    {"cell":0,"net":0,"offset":{"x":1,"y":0}}]}"#;
        let err = Netlist::from_json_str(text).unwrap_err();
        assert!(err.to_string().contains("net-major"), "{err}");
    }
}
