//! Placement design database for the `xplace` framework.
//!
//! This crate is the substrate the paper gets "for free" from the released
//! ISPD 2005 / ISPD 2015 contest data and DREAMPlace's readers. It provides:
//!
//! * [`geom`] — rectangles and points,
//! * [`netlist`] — cells, pins and nets with typed ids,
//! * [`design`] — a complete placement instance (netlist + die region +
//!   rows + positions + target density),
//! * [`stats`] — design statistics (the contents of the paper's Table 1),
//! * [`bookshelf`] — reader/writer for the GSRC Bookshelf format used by
//!   the ISPD 2005 contest (`.aux`, `.nodes`, `.nets`, `.pl`, `.scl`),
//! * [`def`] — reader/writer for a practical subset of DEF as used by the
//!   ISPD 2015 contest releases,
//! * [`synthesis`] — a parameterized circuit synthesizer that generates
//!   designs matching the published statistics of each contest benchmark
//!   (the documented substitution for the proprietary contest data),
//! * [`suites`] — the named `ispd2005_like` / `ispd2015_like` suites, and
//! * [`cache`] — a concurrency-safe design cache so batch runs parse or
//!   synthesize each distinct design once and hand out clones.
//!
//! # Example
//!
//! ```
//! use xplace_db::synthesis::{SynthesisSpec, synthesize};
//!
//! # fn main() -> Result<(), xplace_db::DbError> {
//! let spec = SynthesisSpec::new("demo", 500, 520).with_seed(7);
//! let design = synthesize(&spec)?;
//! assert_eq!(design.name(), "demo");
//! assert!(design.netlist().num_cells() >= 500);
//! design.validate()?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bookshelf;
pub mod cache;
pub mod cluster;
pub mod def;
pub mod design;
mod error;
pub mod fence;
pub mod geom;
pub mod netlist;
pub mod plot;
pub mod stats;
pub mod suites;
pub mod synthesis;

pub use cache::{DesignCache, DEFAULT_DESIGN_CACHE_CAPACITY};
pub use cluster::{build_hierarchy, coarsen, CoarseLevel, HierarchyOptions};
pub use design::{Design, Row};
pub use error::DbError;
pub use fence::FenceRegion;
pub use geom::{Point, Rect};
pub use netlist::{Cell, CellId, CellKind, NetId, NetRef, Netlist, Pin, PinId};
pub use stats::DesignStats;
