//! Multilevel netlist coarsening.
//!
//! Global placement at the 100k–1M-cell scale starts from a hierarchy of
//! progressively smaller netlists: deterministic heavy-edge matching pairs
//! strongly connected movable cells into clusters, aggregating area and
//! connectivity, until the coarsest level is small enough to place
//! cheaply. The placer then walks the hierarchy back down
//! (`crates/core`), seeding each finer level from the coarser solution.
//!
//! Determinism contract: coarsening consumes no RNG and visits cells and
//! pins in index order with scratch-array score accumulation, so the same
//! design always yields the identical hierarchy — independent of thread
//! count, which never enters this module.

use crate::fence::FenceRegion;
use crate::netlist::NetlistBuilder;
use crate::{CellId, CellKind, DbError, Design, Point};

/// Nets wider than this are skipped during matching: a high-degree net
/// says little about which two of its cells belong together, and walking
/// it makes matching quadratic in the worst case.
pub const MATCH_MAX_NET_DEGREE: usize = 16;

/// One coarsening step: the clustered design plus the fine→coarse cell map.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarsened design (same die, rows, density and fences; clustered
    /// cells, aggregated nets).
    pub design: Design,
    /// `map[fine_cell] = coarse_cell` index into `design`'s netlist. Fixed
    /// cells map 1:1; matched movable pairs share a target.
    pub map: Vec<u32>,
}

/// Controls for [`build_hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyOptions {
    /// Stop once the movable-cell count drops to this size.
    pub min_cells: usize,
    /// Hard cap on the number of coarse levels.
    pub max_levels: usize,
    /// Stop when a step keeps more than this fraction of the movable cells
    /// (matching has stalled and further levels buy nothing).
    pub stall_fraction: f64,
}

impl Default for HierarchyOptions {
    fn default() -> Self {
        HierarchyOptions {
            min_cells: 5_000,
            max_levels: 8,
            stall_fraction: 0.9,
        }
    }
}

/// Greedy deterministic heavy-edge matching over the movable cells.
///
/// Cells are visited in id order; each unmatched movable cell merges with
/// its strongest unmatched movable neighbour (connectivity score
/// `Σ weight / (degree - 1)` over shared nets of degree ≤
/// [`MATCH_MAX_NET_DEGREE`]), ties broken toward the lowest cell id.
/// Merges never cross a fence boundary: partners must share the same
/// fence, or both be unfenced.
///
/// Returns `matched[cell] = partner` (self for singletons and fixed
/// cells).
fn heavy_edge_matching(design: &Design) -> Vec<CellId> {
    let nl = design.netlist();
    let n = nl.num_cells();

    // Fence id per cell, usize::MAX for unfenced, precomputed so the inner
    // loop is O(1) per neighbour.
    let mut fence_of = vec![usize::MAX; n];
    for (fi, fence) in design.fences().iter().enumerate() {
        for &c in fence.members() {
            fence_of[c.index()] = fi;
        }
    }

    let mut matched: Vec<CellId> = (0..n as u32).map(CellId).collect();
    let mut taken = vec![false; n];
    // Scratch score accumulator + touched list: accumulation order is the
    // pin order of the netlist, so float sums are reproducible.
    let mut score = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();

    for u in 0..n {
        if taken[u] || !nl.cell(CellId(u as u32)).is_movable() {
            continue;
        }
        touched.clear();
        for &p in nl.pins_of_cell(CellId(u as u32)) {
            let net = nl.pin(p).net;
            let span = nl.net_pin_range(net);
            let degree = span.len();
            if degree < 2 || degree > MATCH_MAX_NET_DEGREE {
                continue;
            }
            let w = nl.net_weights()[net.index()] / (degree - 1) as f64;
            for &c in &nl.pin_cells()[span] {
                let v = c.index();
                if v == u || taken[v] || !nl.cell(c).is_movable() || fence_of[v] != fence_of[u] {
                    continue;
                }
                if score[v] == 0.0 {
                    touched.push(v);
                }
                score[v] += w;
            }
        }
        // Strongest neighbour, lowest id on ties.
        let mut best: Option<usize> = None;
        for &v in &touched {
            let better = match best {
                None => true,
                Some(b) => score[v] > score[b] || (score[v] == score[b] && v < b),
            };
            if better {
                best = Some(v);
            }
        }
        for &v in &touched {
            score[v] = 0.0;
        }
        if let Some(v) = best {
            matched[u] = CellId(v as u32);
            matched[v] = CellId(u as u32);
            taken[v] = true;
        }
        taken[u] = true;
    }
    matched
}

/// Performs one deterministic coarsening step.
///
/// Matched movable pairs become single clusters (summed area, width
/// `area / row_height` clamped to the die, area-weighted centroid
/// position); fixed cells and terminals pass through unchanged. Nets remap
/// their pins to clusters with zero offsets, drop duplicate endpoints, and
/// disappear entirely when fewer than two distinct clusters remain.
///
/// # Errors
///
/// Propagates [`DbError`] from netlist/design assembly; a validated input
/// design always coarsens cleanly.
pub fn coarsen(design: &Design) -> Result<CoarseLevel, DbError> {
    let nl = design.netlist();
    let n = nl.num_cells();
    let matched = heavy_edge_matching(design);
    let row_height = design
        .rows()
        .first()
        .map_or(1.0, |r| r.height)
        .max(f64::MIN_POSITIVE);
    let die_width = design.region().width();

    let mut builder = NetlistBuilder::with_capacity(n, nl.num_nets(), nl.num_pins());
    let mut map = vec![u32::MAX; n];
    let mut positions: Vec<Point> = Vec::new();
    for u in 0..n {
        if map[u] != u32::MAX {
            continue;
        }
        let id_u = CellId(u as u32);
        let cell = nl.cell(id_u);
        let v = matched[u].index();
        let coarse = if !cell.is_movable() || v == u {
            // Pass-through: fixed geometry keeps its exact shape; a
            // singleton cluster keeps the cell's own dimensions.
            let name = if cell.is_movable() {
                format!("c{}", builder.num_cells())
            } else {
                cell.name().to_string()
            };
            let id = builder.add_cell(name, cell.width(), cell.height(), cell.kind());
            positions.push(design.position(id_u));
            id
        } else {
            let other = nl.cell(matched[u]);
            let area = cell.area() + other.area();
            let width = (area / row_height).clamp(cell.width().max(other.width()), die_width);
            let id = builder.add_cell(
                format!("c{}", builder.num_cells()),
                width,
                row_height,
                CellKind::Movable,
            );
            let (pu, pv) = (design.position(id_u), design.position(matched[u]));
            let (au, av) = (cell.area(), other.area());
            positions.push(Point::new(
                (pu.x * au + pv.x * av) / area,
                (pu.y * au + pv.y * av) / area,
            ));
            map[v] = id.index() as u32;
            id
        };
        map[u] = coarse.index() as u32;
    }

    // Nets: remap, drop duplicate endpoints, keep only multi-cluster nets.
    let mut seen_cluster: Vec<bool> = vec![false; builder.num_cells()];
    let mut members: Vec<CellId> = Vec::new();
    for net in nl.nets() {
        members.clear();
        for &c in &nl.pin_cells()[net.pin_range()] {
            let cluster = CellId(map[c.index()]);
            if !seen_cluster[cluster.index()] {
                seen_cluster[cluster.index()] = true;
                members.push(cluster);
            }
        }
        for &m in &members {
            seen_cluster[m.index()] = false;
        }
        if members.len() < 2 {
            continue;
        }
        let pins: Vec<(CellId, Point)> = members.iter().map(|&m| (m, Point::default())).collect();
        builder.add_net_weighted(net.name().to_string(), pins, net.weight())?;
    }

    let mut coarse_design = Design::new(
        design.name().to_string(),
        builder.finish()?,
        design.region(),
        design.rows().to_vec(),
        design.target_density(),
        positions,
    )?;

    // Fences carry down: matching never crosses a fence boundary, so each
    // cluster lies wholly inside one fence (or none).
    if !design.fences().is_empty() {
        let mut fences = Vec::with_capacity(design.fences().len());
        let mut in_fence = vec![false; coarse_design.netlist().num_cells()];
        for fence in design.fences() {
            let mut members: Vec<CellId> = Vec::new();
            for &c in fence.members() {
                let cluster = CellId(map[c.index()]);
                if !in_fence[cluster.index()] {
                    in_fence[cluster.index()] = true;
                    members.push(cluster);
                }
            }
            for &m in &members {
                in_fence[m.index()] = false;
            }
            fences.push(FenceRegion::new(
                fence.name().to_string(),
                fence.rects().to_vec(),
                members,
            )?);
        }
        coarse_design.set_fences(fences)?;
    }

    Ok(CoarseLevel {
        design: coarse_design,
        map,
    })
}

/// Builds the full coarsening hierarchy, finest-derived first.
///
/// `levels[0]` is one step coarser than `design`; `levels.last()` is the
/// coarsest. Each level's `map` indexes the previous level's cells
/// (`design`'s for level 0). Stops at [`HierarchyOptions::min_cells`]
/// movable cells, after [`HierarchyOptions::max_levels`] steps, or when a
/// step retires fewer than `1 - stall_fraction` of the movable cells.
///
/// # Errors
///
/// Propagates [`DbError`] from [`coarsen`].
pub fn build_hierarchy(
    design: &Design,
    opts: &HierarchyOptions,
) -> Result<Vec<CoarseLevel>, DbError> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let movable = |d: &Design| d.netlist().num_movable();
    let mut current = movable(design);
    while levels.len() < opts.max_levels && current > opts.min_cells {
        let level = match levels.last() {
            Some(prev) => coarsen(&prev.design)?,
            None => coarsen(design)?,
        };
        let next = movable(&level.design);
        let stalled = (next as f64) > (current as f64) * opts.stall_fraction;
        levels.push(level);
        current = next;
        if stalled {
            break;
        }
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize, SynthesisSpec, Topology};

    fn chain_design(cells: usize) -> Design {
        synthesize(
            &SynthesisSpec::new("chain", cells, cells)
                .with_seed(71)
                .with_topology(Topology::SystolicGrid),
        )
        .unwrap()
    }

    #[test]
    fn one_step_roughly_halves_a_grid() {
        let d = chain_design(400);
        let level = coarsen(&d).unwrap();
        let before = d.netlist().num_movable();
        let after = level.design.netlist().num_movable();
        assert!(
            after <= before * 3 / 5,
            "weak reduction: {before} -> {after}"
        );
        level.design.validate().unwrap();
    }

    #[test]
    fn map_is_total_and_area_is_conserved() {
        let d = synthesize(&SynthesisSpec::new("t", 500, 520).with_seed(73)).unwrap();
        let level = coarsen(&d).unwrap();
        let coarse_cells = level.design.netlist().num_cells();
        assert_eq!(level.map.len(), d.netlist().num_cells());
        for &m in &level.map {
            assert!((m as usize) < coarse_cells);
        }
        let fine_area = d.netlist().movable_area();
        let coarse_area = level.design.netlist().movable_area();
        assert!(
            (fine_area - coarse_area).abs() < 1e-6 * fine_area,
            "area drift: {fine_area} vs {coarse_area}"
        );
    }

    #[test]
    fn fixed_cells_pass_through() {
        let d = synthesize(
            &SynthesisSpec::new("t", 300, 320)
                .with_seed(79)
                .with_macro_count(5),
        )
        .unwrap();
        let level = coarsen(&d).unwrap();
        let fine = d.netlist();
        let coarse = level.design.netlist();
        for c in fine.cell_ids() {
            if !fine.cell(c).is_movable() {
                let m = CellId(level.map[c.index()]);
                assert_eq!(coarse.cell(m).kind(), fine.cell(c).kind());
                assert_eq!(coarse.cell(m).name(), fine.cell(c).name());
                assert_eq!(level.design.position(m), d.position(c));
            }
        }
    }

    #[test]
    fn fence_members_never_merge_across_fences() {
        let d = synthesize(
            &SynthesisSpec::new("t", 600, 620)
                .with_seed(83)
                .with_fences(3),
        )
        .unwrap();
        assert_eq!(d.fences().len(), 3);
        let level = coarsen(&d).unwrap();
        // A cluster containing a member of fence i must appear only in
        // coarse fence i.
        let coarse_fences = level.design.fences();
        assert_eq!(coarse_fences.len(), 3);
        let mut owner = vec![usize::MAX; level.design.netlist().num_cells()];
        for (fi, fence) in coarse_fences.iter().enumerate() {
            for &m in fence.members() {
                assert_eq!(owner[m.index()], usize::MAX, "cluster in two fences");
                owner[m.index()] = fi;
            }
        }
        for (fi, fence) in d.fences().iter().enumerate() {
            for &c in fence.members() {
                assert_eq!(owner[level.map[c.index()] as usize], fi);
            }
        }
    }

    #[test]
    fn coarsening_is_deterministic() {
        let d = synthesize(&SynthesisSpec::new("t", 400, 410).with_seed(89)).unwrap();
        let a = coarsen(&d).unwrap();
        let b = coarsen(&d).unwrap();
        assert_eq!(a.map, b.map);
        assert_eq!(a.design.netlist(), b.design.netlist());
        assert_eq!(a.design.positions(), b.design.positions());
    }

    #[test]
    fn hierarchy_reduces_monotonically_and_terminates() {
        let d = synthesize(&SynthesisSpec::new("t", 2000, 2100).with_seed(97)).unwrap();
        let opts = HierarchyOptions {
            min_cells: 100,
            max_levels: 10,
            stall_fraction: 0.9,
        };
        let levels = build_hierarchy(&d, &opts).unwrap();
        assert!(!levels.is_empty());
        let mut prev = d.netlist().num_movable();
        for level in &levels {
            let cur = level.design.netlist().num_movable();
            assert!(cur < prev, "level did not shrink: {prev} -> {cur}");
            prev = cur;
        }
        let coarsest = levels.last().unwrap().design.netlist().num_movable();
        assert!(coarsest <= 2000 / 4, "hierarchy too shallow: {coarsest}");
    }

    #[test]
    fn coarse_nets_have_distinct_endpoints() {
        let d = chain_design(300);
        let level = coarsen(&d).unwrap();
        let nl = level.design.netlist();
        for net in nl.nets() {
            let mut cells: Vec<_> = nl.pin_cells()[net.pin_range()].to_vec();
            let before = cells.len();
            cells.sort();
            cells.dedup();
            assert_eq!(before, cells.len(), "coarse net repeats a cluster");
            assert!(before >= 2);
        }
    }
}
