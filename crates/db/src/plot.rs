//! SVG rendering of placements (debugging and documentation aid).

use crate::{CellKind, DbError, Design};
use std::fmt::Write as _;
use std::path::Path;

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotConfig {
    /// Output image width in pixels (height follows the aspect ratio).
    pub width_px: f64,
    /// Draw net bounding boxes for the `longest_nets` longest nets.
    pub longest_nets: usize,
}

impl Default for PlotConfig {
    fn default() -> Self {
        PlotConfig {
            width_px: 800.0,
            longest_nets: 0,
        }
    }
}

/// Renders the design as an SVG string: die outline, rows, fixed macros,
/// movable cells, fence regions, and optionally the longest nets' bounding
/// boxes.
pub fn to_svg(design: &Design, config: &PlotConfig) -> String {
    let region = design.region();
    let scale = config.width_px / region.width();
    let height_px = region.height() * scale;
    let px = |x: f64| (x - region.lx) * scale;
    // SVG y grows downward; flip so the plot matches die coordinates.
    let py = |y: f64| height_px - (y - region.ly) * scale;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"##,
        config.width_px, height_px, config.width_px, height_px
    );
    let _ = writeln!(
        svg,
        r##"<rect x="0" y="0" width="{:.1}" height="{:.1}" fill="#ffffff" stroke="#222222"/>"##,
        config.width_px, height_px
    );

    // Rows (light guides).
    for row in design.rows() {
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#eeeeee" stroke-width="0.5"/>"##,
            px(row.x_min),
            py(row.y),
            px(row.x_max),
            py(row.y)
        );
    }

    // Fences.
    for fence in design.fences() {
        for r in fence.rects() {
            let _ = writeln!(
                svg,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#fff3c4" stroke="#c89b00" stroke-dasharray="4 2"/>"##,
                px(r.lx),
                py(r.uy),
                r.width() * scale,
                r.height() * scale
            );
        }
    }

    // Cells.
    let nl = design.netlist();
    for id in nl.cell_ids() {
        let c = nl.cell(id);
        if c.width() <= 0.0 || c.height() <= 0.0 {
            continue;
        }
        let r = design.cell_rect(id);
        let fill = match c.kind() {
            CellKind::Fixed => "#9aa7b1",
            CellKind::Movable if design.fence_of(id).is_some() => "#e3873e",
            CellKind::Movable => "#4d8fd1",
            CellKind::Terminal => "#444444",
        };
        let _ = writeln!(
            svg,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.2}" height="{:.2}" fill="{fill}" fill-opacity="0.8" stroke="#333333" stroke-width="0.2"/>"##,
            px(r.lx),
            py(r.uy),
            r.width() * scale,
            r.height() * scale
        );
    }

    // Longest nets' bounding boxes.
    if config.longest_nets > 0 {
        let mut nets: Vec<(f64, crate::NetId)> =
            nl.net_ids().map(|n| (design.net_hpwl(n), n)).collect();
        nets.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite HPWL"));
        for &(_, net) in nets.iter().take(config.longest_nets) {
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            for pid in nl.net(net).pins() {
                let p = design.pin_position(pid);
                min_x = min_x.min(p.x);
                max_x = max_x.max(p.x);
                min_y = min_y.min(p.y);
                max_y = max_y.max(p.y);
            }
            let _ = writeln!(
                svg,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="none" stroke="#d14d4d" stroke-width="0.8"/>"##,
                px(min_x),
                py(max_y),
                (max_x - min_x) * scale,
                (max_y - min_y) * scale
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Writes the SVG rendering to a file.
///
/// # Errors
///
/// Returns [`DbError::Io`] on file-system problems.
pub fn write_svg(design: &Design, config: &PlotConfig, path: &Path) -> Result<(), DbError> {
    std::fs::write(path, to_svg(design, config))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{synthesize, SynthesisSpec};

    #[test]
    fn svg_contains_the_expected_elements() {
        let design = synthesize(
            &SynthesisSpec::new("plot", 80, 90)
                .with_seed(2)
                .with_macro_count(2)
                .with_fences(1),
        )
        .unwrap();
        let svg = to_svg(
            &design,
            &PlotConfig {
                width_px: 400.0,
                longest_nets: 3,
            },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // movable cells, macros, fences, and net boxes all present.
        assert!(svg.contains("#4d8fd1"), "movable cells missing");
        assert!(svg.contains("#9aa7b1"), "macros missing");
        assert!(svg.contains("#fff3c4"), "fence missing");
        assert!(svg.contains("#e3873e"), "fenced members missing");
        assert!(svg.contains("#d14d4d"), "net boxes missing");
        // One rect per drawable cell plus chrome.
        let rects = svg.matches("<rect").count();
        assert!(rects > 80, "only {rects} rects");
    }

    #[test]
    fn write_svg_round_trips_to_disk() {
        let design = synthesize(&SynthesisSpec::new("plotio", 30, 40).with_seed(3)).unwrap();
        let path = std::env::temp_dir().join(format!("xplace_plot_{}.svg", std::process::id()));
        write_svg(&design, &PlotConfig::default(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("</svg>"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aspect_ratio_is_preserved() {
        let design = synthesize(&SynthesisSpec::new("plotar", 50, 60).with_seed(4)).unwrap();
        let svg = to_svg(
            &design,
            &PlotConfig {
                width_px: 500.0,
                longest_nets: 0,
            },
        );
        let expect_h = 500.0 * design.region().height() / design.region().width();
        assert!(svg.contains(&format!(r#"height="{expect_h:.0}""#)));
    }
}
