//! A minimal property-testing harness.
//!
//! The surface mirrors the slice of `proptest` this workspace used:
//! range strategies, tuples, `vec`, `map`, a [`props!`] macro that turns
//! each property into a `#[test]`, and `prop_assert!`/`prop_assert_eq!`
//! inside bodies. Every run is deterministic: case seeds derive from a
//! fixed base seed and the property name, so two consecutive `cargo test`
//! runs execute bit-identical cases. On failure the harness shrinks the
//! input by halving toward the range minimum and reports the case seed
//! with an environment-variable recipe to replay exactly that case.
//!
//! ```
//! use xplace_testkit::{prop_assert, props};
//! use xplace_testkit::prop::Config;
//!
//! props! {
//!     config = Config::with_cases(64);
//!
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert!(a + b == b + a, "{} + {} not commutative", a, b);
//!     }
//! }
//! ```
//!
//! Environment overrides: `XPLACE_PROP_CASES` (case count),
//! `XPLACE_PROP_SEED` (base seed, e.g. to replay a reported failure with
//! `XPLACE_PROP_CASES=1`).

use crate::rng::{mix, Rng};
use std::fmt::Debug;

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct Failure {
    msg: String,
}

impl Failure {
    /// Creates a failure with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Failure { msg: msg.into() }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// The result type property bodies produce (via `prop_assert!` early
/// returns; the [`props!`] macro appends the final `Ok`).
pub type PropResult = Result<(), Failure>;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; case seeds derive from it and the property name.
    pub seed: u64,
    /// Upper bound on accepted shrink steps.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0xc0ffee,
            max_shrink_steps: 512,
        }
    }
}

impl Config {
    /// A config running `cases` cases (the `ProptestConfig::with_cases`
    /// analogue).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Generates values and proposes smaller variants of failing ones.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of `value`, nearest-to-minimal first.
    /// The default offers no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` (named after proptest's
    /// `prop_map`; `map` would collide with `Iterator::map` on ranges).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
        T: Clone + Debug,
    {
        Map { inner: self, f }
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                if v == lo {
                    return Vec::new();
                }
                // Candidates ascending from the minimum toward `value`:
                // lo, then v - (v-lo)/2^k. The greedy runner accepts the
                // first (smallest) still-failing candidate, so each
                // accepted step at least halves the distance to the
                // failure boundary — binary-search convergence.
                let mut out = vec![lo];
                let mut delta = (v - lo) / 2;
                while delta > 0 {
                    let c = v - delta;
                    if c != lo && out.last() != Some(&c) {
                        out.push(c);
                    }
                    delta /= 2;
                }
                out
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                (*self.start()..(*value).max(*self.start())).shrink(value)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        // Toward zero when the range straddles it, else toward the start;
        // ascending candidates as in the integer case.
        let anchor = if self.start <= 0.0 && self.end > 0.0 {
            0.0
        } else {
            self.start
        };
        let v = *value;
        if v == anchor {
            return Vec::new();
        }
        let mut out = vec![anchor];
        let mut delta = (v - anchor) * 0.5;
        for _ in 0..24 {
            let c = v - delta;
            if c != anchor && c != v && out.last() != Some(&c) {
                out.push(c);
            }
            delta *= 0.5;
        }
        out
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Clone + Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.inner.generate(rng))
    }
    // Mapped strategies do not shrink: the pre-image is not stored with
    // the value. Ranges and vecs (the shrink-bearing strategies) are used
    // directly where shrinking matters.
}

/// A strategy from a closure (no shrinking) — the escape hatch for
/// structured generators like "a power-of-two-length signal".
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    F: Fn(&mut Rng) -> T,
    T: Clone + Debug,
{
    FromFn { f }
}

/// See [`from_fn`].
#[derive(Debug, Clone)]
pub struct FromFn<F> {
    f: F,
}

impl<T, F> Strategy for FromFn<F>
where
    F: Fn(&mut Rng) -> T,
    T: Clone + Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(rng)
    }
}

/// Always produces `value`.
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just { value }
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T> {
    value: T,
}

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.value.clone()
    }
}

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `element` (the `proptest::collection::vec` analogue).
pub fn vec<S: Strategy>(element: S, len: std::ops::RangeInclusive<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::RangeInclusive<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min_len = *self.len.start();
        // Halve the length first (dropping the tail), then shrink the
        // first shrinkable element.
        if value.len() > min_len {
            let half = (value.len() / 2).max(min_len);
            out.push(value[..half].to_vec());
            out.push(value[..value.len() - 1].to_vec());
        }
        for (i, v) in value.iter().enumerate() {
            let elem_shrinks = self.element.shrink(v);
            if let Some(s) = elem_shrinks.into_iter().next() {
                let mut smaller = value.clone();
                smaller[i] = s;
                out.push(smaller);
                break;
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for s in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = s;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// FNV-1a over the property name, to decorrelate properties sharing a
/// base seed.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `test` over `config.cases` generated inputs; shrinks and panics
/// with a replay recipe on the first failure.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the property fails.
pub fn run_prop<S, F>(name: &str, config: &Config, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> PropResult,
{
    let cases = env_u64("XPLACE_PROP_CASES")
        .map(|v| v as u32)
        .unwrap_or(config.cases);
    let base_seed = env_u64("XPLACE_PROP_SEED").unwrap_or(mix(config.seed, name_hash(name)));
    for case in 0..cases {
        let case_seed = mix(base_seed, case as u64);
        let mut rng = Rng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        if let Err(failure) = test(value.clone()) {
            let (min_value, min_failure, steps) =
                shrink_failure(&strategy, &test, value, failure, config.max_shrink_steps);
            panic!(
                "property `{name}` failed (case {case}/{cases}, seed {case_seed:#x}):\n  \
                 {min_failure}\n  minimal input (after {steps} shrink steps): {min_value:?}\n  \
                 replay: XPLACE_PROP_SEED={base_seed} XPLACE_PROP_CASES={n} cargo test {name}",
                n = case + 1,
            );
        }
    }
}

/// Greedily walks shrink candidates while they keep failing.
fn shrink_failure<S, F>(
    strategy: &S,
    test: &F,
    mut value: S::Value,
    mut failure: Failure,
    max_steps: u32,
) -> (S::Value, Failure, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> PropResult,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in strategy.shrink(&value) {
            if let Err(f) = test(candidate.clone()) {
                value = candidate;
                failure = f;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, failure, steps)
}

/// Declares property tests. Each `fn name(args in strategies) { body }`
/// expands to a `#[test]` running the body over generated inputs; use
/// `prop_assert!` / `prop_assert_eq!` in the body.
#[macro_export]
macro_rules! props {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::prop::Config = $cfg;
                let strategy = ($($strat,)+);
                $crate::prop::run_prop(
                    stringify!($name),
                    &config,
                    strategy,
                    |($($arg,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts inside a property body, early-returning a [`Failure`] that the
/// harness shrinks and reports (instead of panicking mid-shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::prop::Failure::new(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::prop::Failure::new(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::prop::Failure::new(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        run_prop("always_true", &Config::with_cases(50), 0u64..100, |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 50);
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            // Strategy + config fixed => identical case values.
            let cfg = Config::with_cases(32);
            let strategy = (0u64..1_000_000, 0.0..1.0f64);
            for case in 0..cfg.cases {
                let case_seed = mix(mix(cfg.seed, name_hash("det")), case as u64);
                let mut rng = Rng::seed_from_u64(case_seed);
                seen.push(strategy.generate(&mut rng));
            }
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    #[should_panic(expected = "property `fails_above_10`")]
    fn failing_property_panics_with_name() {
        run_prop(
            "fails_above_10",
            &Config::with_cases(100),
            0u64..1000,
            |v| {
                if v > 10 {
                    Err(Failure::new(format!("{v} > 10")))
                } else {
                    Ok(())
                }
            },
        );
    }

    #[test]
    fn shrinking_reaches_a_minimal_counterexample() {
        let strategy = 0u64..100_000;
        let test = |v: u64| {
            if v >= 4321 {
                Err(Failure::new("too big"))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = shrink_failure(&strategy, &test, 99_999, Failure::new("seed"), 512);
        assert_eq!(min, 4321, "halving + decrement should reach the boundary");
    }

    #[test]
    fn vec_strategy_respects_length_and_shrinks_shorter() {
        let s = vec(0.0..1.0f64, 3..=10);
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..=10).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
        let v = s.generate(&mut rng);
        for smaller in s.shrink(&v) {
            assert!(smaller.len() >= 3);
            assert!(smaller.len() <= v.len());
        }
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let s = (0u64..100, 0u64..100);
        for (a, b) in s.shrink(&(50, 60)) {
            assert!((a == 50) ^ (b == 60) || (a < 50 && b == 60) || (a == 50 && b < 60));
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let s = (0u64..10).prop_map(|v| v * 2);
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    // The macro surface, exercised end to end.
    props! {
        config = Config::with_cases(32);

        fn macro_single_arg(v in 0u64..50) {
            prop_assert!(v < 50);
        }

        fn macro_multi_arg(a in 0u64..10, b in 0.0..1.0f64, c in vec(0u32..5, 0..=4)) {
            prop_assert!(a < 10, "a = {}", a);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(c.len(), c.len());
        }
    }
}
