//! A minimal JSON layer: a value tree, an encoder, a recursive-descent
//! parser, and the [`ToJson`] / [`FromJson`] traits the workspace's data
//! types implement by hand (the `serde` derive replacement).
//!
//! ```
//! use xplace_testkit::json::{FromJson, Json, ToJson};
//!
//! let v = Json::obj([("xs", vec![1.5f64, 2.5].to_json())]);
//! let text = v.render();
//! assert_eq!(text, r#"{"xs":[1.5,2.5]}"#);
//! let back = Json::parse(&text).unwrap();
//! let xs = Vec::<f64>::from_json(back.get("xs").unwrap()).unwrap();
//! assert_eq!(xs, [1.5, 2.5]);
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so encoding is
    /// deterministic.
    Obj(Vec<(String, Json)>),
}

/// A JSON encode/decode error with a short context description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value of `key`, or a `JsonError` naming the missing field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(v) => Ok(*v),
            other => Err(JsonError(format!("expected number, got {other:?}"))),
        }
    }

    /// This value as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64 * 4096.0 {
            Ok(v as usize)
        } else {
            Err(JsonError(format!("expected unsigned integer, got {v}")))
        }
    }

    /// This value as a `u64`, exact up to 2^53 (the largest integer a
    /// JSON number can carry losslessly) — wide enough for nanosecond
    /// counters, unlike [`Json::as_usize`]'s tighter cap.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= (1u64 << 53) as f64 {
            Ok(v as u64)
        } else {
            Err(JsonError(format!("expected u64, got {v}")))
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError(format!("expected string, got {other:?}"))),
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError(format!("expected bool, got {other:?}"))),
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError(format!("expected array, got {other:?}"))),
        }
    }

    /// Encodes to compact JSON text. Non-finite numbers encode as `null`
    /// (JSON has no NaN/Infinity).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips, so encode/parse is lossless.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uDC00-\uDFFF.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number chars");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError(format!("invalid number `{text}` at byte {start}")))
    }
}

/// Types that encode themselves as JSON (the `Serialize` replacement;
/// implemented by hand, no derive).
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;

    /// Convenience: encode straight to text.
    fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

/// Types that decode themselves from JSON (the `Deserialize`
/// replacement).
pub trait FromJson: Sized {
    /// Decodes from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on shape or type mismatches.
    fn from_json(value: &Json) -> Result<Self, JsonError>;

    /// Convenience: parse then decode.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed text or shape mismatches.
    fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::str(self)
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_str().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::str(self)
    }
}

macro_rules! uint_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                Ok(value.as_usize()? as $t)
            }
        }
    )*};
}

uint_to_json!(u32, usize);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_u64()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "3.25e2", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "round trip of {text}");
        }
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0, -0.5, 1.0 / 3.0, 1e300, f64::MIN_POSITIVE, 12345.6789] {
            let text = Json::Num(v).render();
            assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), v);
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "a\"b\\c\nd\te\u{08}\u{0c}\u{1f}é€𝄞";
        let text = Json::str(nasty).render();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), nasty);
        // Standard escape forms parse too.
        assert_eq!(Json::parse(r#""Aé𝄞\/""#).unwrap().as_str().unwrap(), "Aé𝄞/");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::str("adaptec-like")),
            ("counts", Json::Arr(vec![Json::num(1.0), Json::num(2.0)])),
            (
                "nested",
                Json::obj([("ok", Json::Bool(true)), ("none", Json::Null)]),
            ),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            r#"{"name":"adaptec-like","counts":[1,2],"nested":{"ok":true,"none":null}}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
        ] {
            assert!(Json::parse(text).is_err(), "`{text}` should fail");
        }
    }

    #[test]
    fn field_reports_missing_keys() {
        let v = Json::obj([("x", Json::num(1.0))]);
        assert_eq!(v.field("x").unwrap().as_f64().unwrap(), 1.0);
        let err = v.field("y").unwrap_err();
        assert!(err.to_string().contains("missing field `y`"));
    }

    #[test]
    fn trait_impls_round_trip() {
        let xs = vec![1.0f64, -2.5, 0.0];
        assert_eq!(Vec::<f64>::from_json_str(&xs.to_json_string()).unwrap(), xs);
        let s = "hello".to_string();
        assert_eq!(String::from_json_str(&s.to_json_string()).unwrap(), s);
        let n: Option<u64> = None;
        assert_eq!(
            Option::<u64>::from_json_str(&n.to_json_string()).unwrap(),
            n
        );
        assert_eq!(u32::from_json(&Json::num(7.0)).unwrap(), 7);
        assert!(u32::from_json(&Json::num(1.5)).is_err());
        assert!(u32::from_json(&Json::num(-1.0)).is_err());
    }

    #[test]
    fn u64_round_trips_nanosecond_scale_values() {
        // Larger than as_usize's cap, still exact as a JSON double.
        let ns: u64 = 20_000_000_000_000; // 20,000 modeled seconds
        assert_eq!(u64::from_json_str(&ns.to_json_string()).unwrap(), ns);
        assert_eq!(u64::from_json(&Json::num(0.0)).unwrap(), 0);
        assert!(u64::from_json(&Json::num(-1.0)).is_err());
        assert!(u64::from_json(&Json::num(1.5)).is_err());
        assert!(u64::from_json(&Json::num(2.0f64.powi(60))).is_err());
    }
}
