//! A wall-clock micro-benchmark harness (the workspace's Criterion
//! replacement).
//!
//! Each benchmark warms up, picks an iteration count so one sample lasts
//! long enough to measure, collects a fixed number of samples, and emits
//! one JSON line per benchmark (median / p95 / mean / min nanoseconds per
//! iteration) to stdout — and to the file named by `XPLACE_BENCH_OUT`
//! when set, so sweeps can be collected across runs.
//!
//! Bench targets use `harness = false` and the [`bench_group!`] /
//! [`bench_main!`] macros:
//!
//! ```ignore
//! use xplace_testkit::bench::Bench;
//! use xplace_testkit::{bench_group, bench_main};
//!
//! fn bench_sort(c: &mut Bench) {
//!     let mut group = c.benchmark_group("sort");
//!     group.bench_function("small", |b| b.iter(|| (0..100).rev().collect::<Vec<_>>()));
//!     group.finish();
//! }
//!
//! bench_group!(benches, bench_sort);
//! bench_main!(benches);
//! ```
//!
//! Environment overrides: `XPLACE_BENCH_SAMPLES` (samples per benchmark),
//! `XPLACE_BENCH_FAST=1` (one quick sample each — the smoke-test mode CI
//! uses), `XPLACE_BENCH_OUT` (JSON-lines output path).

use crate::json::Json;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target wall time for one sample; the harness calibrates the iteration
/// count per sample against this.
const TARGET_SAMPLE: Duration = Duration::from_millis(8);

/// How a batched routine's setup cost scales; accepted for source
/// compatibility with Criterion's `iter_batched` — the harness always
/// runs setup once per measured invocation, outside the timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (e.g. a cloned design).
    LargeInput,
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// One benchmark's collected statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Number of samples collected.
    pub samples: usize,
    /// Timed iterations within each sample.
    pub iters_per_sample: u64,
    /// Median ns/iter.
    pub median_ns: f64,
    /// 95th-percentile ns/iter.
    pub p95_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Minimum ns/iter.
    pub min_ns: f64,
}

impl Stats {
    fn from_samples(name: String, iters: u64, mut ns_per_iter: Vec<f64>) -> Self {
        ns_per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = ns_per_iter.len();
        let pick = |q: f64| ns_per_iter[((n - 1) as f64 * q).round() as usize];
        Stats {
            name,
            samples: n,
            iters_per_sample: iters,
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            mean_ns: ns_per_iter.iter().sum::<f64>() / n as f64,
            min_ns: ns_per_iter[0],
        }
    }

    /// The JSON-line representation.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str(&self.name)),
            ("samples", Json::num(self.samples as f64)),
            ("iters_per_sample", Json::num(self.iters_per_sample as f64)),
            ("median_ns", Json::num(self.median_ns)),
            ("p95_ns", Json::num(self.p95_ns)),
            ("mean_ns", Json::num(self.mean_ns)),
            ("min_ns", Json::num(self.min_ns)),
        ])
    }
}

/// The top-level harness handed to each `bench_group!` function.
#[derive(Debug, Default)]
pub struct Bench {
    results: Vec<Stats>,
}

impl Bench {
    /// Creates a harness.
    pub fn new() -> Self {
        Bench::default()
    }

    /// Opens a named group; benchmark names are prefixed `group/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            bench: self,
            prefix: name.into(),
            sample_size: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run(name, None, f);
    }

    fn run<F>(&mut self, name: String, sample_size: Option<usize>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let fast = std::env::var("XPLACE_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false);
        let samples = std::env::var("XPLACE_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| if fast { 1 } else { sample_size.unwrap_or(30) })
            .max(1);
        let mut bencher = Bencher {
            samples,
            fast,
            stats: None,
            name: name.clone(),
        };
        f(&mut bencher);
        let stats = bencher
            .stats
            .unwrap_or_else(|| panic!("benchmark `{name}` never called iter()"));
        emit(&stats);
        self.results.push(stats);
    }

    /// All collected results.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct Group<'a> {
    bench: &'a mut Bench,
    prefix: String,
    /// `None` until [`Group::sample_size`] is called.
    sample_size: Option<usize>,
}

impl<'a> Group<'a> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Runs a benchmark named `prefix/name`.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        self.bench.run(full, self.sample_size, f);
        self
    }

    /// Runs a benchmark with an input reference (Criterion-shaped; the
    /// input is simply passed through to the closure).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (kept for Criterion source compatibility).
    pub fn finish(&mut self) {}
}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    fast: bool,
    stats: Option<Stats>,
    name: String,
}

impl Bencher {
    /// Times `routine`, called in calibrated batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + calibration: time single calls until either the target
        // sample duration or a call budget is reached.
        let calib_start = Instant::now();
        let mut calls = 0u64;
        let budget = if self.fast {
            Duration::from_millis(2)
        } else {
            Duration::from_millis(50)
        };
        while calib_start.elapsed() < budget && calls < 1_000_000 {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = calib_start.elapsed().as_secs_f64() / calls.max(1) as f64;
        let iters = if self.fast {
            1
        } else {
            ((TARGET_SAMPLE.as_secs_f64() / per_call.max(1e-9)) as u64).clamp(1, 1_000_000)
        };

        let mut ns_per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            ns_per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.stats = Some(Stats::from_samples(self.name.clone(), iters, ns_per_iter));
    }

    /// Times `routine` on fresh values from `setup`; setup runs outside
    /// the timer.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let samples = if self.fast { 1 } else { self.samples };
        let mut ns_per_iter = Vec::with_capacity(samples);
        // One warmup invocation so cold-start effects (allocation, page
        // faults) do not land in the first sample.
        std::hint::black_box(routine(setup()));
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            ns_per_iter.push(start.elapsed().as_nanos() as f64);
        }
        self.stats = Some(Stats::from_samples(self.name.clone(), 1, ns_per_iter));
    }
}

/// Prints one result as a human line + a JSON line, appending to
/// `XPLACE_BENCH_OUT` when set.
fn emit(stats: &Stats) {
    let line = stats.to_json().render();
    println!(
        "{:<48} median {:>12.1} ns/iter  p95 {:>12.1}  min {:>12.1}",
        stats.name, stats.median_ns, stats.p95_ns, stats.min_ns
    );
    println!("{line}");
    if let Ok(path) = std::env::var("XPLACE_BENCH_OUT") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Declares a benchmark group function, Criterion-style:
/// `bench_group!(name, fn_a, fn_b)` defines `fn name(&mut Bench)` running
/// each listed function.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group(bench: &mut $crate::bench::Bench) {
            $($function(bench);)+
        }
    };
}

/// Declares the `main` of a `harness = false` bench target.
#[macro_export]
macro_rules! bench_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::new();
            $($group(&mut bench);)+
            eprintln!("{} benchmarks completed", bench.results().len());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_guard() {
        // Keep unit tests quick regardless of the ambient environment.
        std::env::set_var("XPLACE_BENCH_FAST", "1");
    }

    #[test]
    fn iter_collects_stats() {
        fast_guard();
        let mut bench = Bench::new();
        bench.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let s = &bench.results()[0];
        assert_eq!(s.name, "spin");
        assert!(s.median_ns >= 0.0 && s.min_ns <= s.p95_ns);
        assert!(s.samples >= 1);
    }

    #[test]
    fn groups_prefix_names_and_batched_runs() {
        fast_guard();
        let mut bench = Bench::new();
        {
            let mut g = bench.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("plain", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
                b.iter_batched(
                    || vec![1u8; n],
                    |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                    BatchSize::LargeInput,
                )
            });
            g.finish();
        }
        let names: Vec<&str> = bench.results().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["grp/plain", "grp/64"]);
    }

    #[test]
    fn stats_quantiles_are_ordered() {
        let s = Stats::from_samples("q".into(), 1, vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 3.0);
        assert!(s.p95_ns >= s.median_ns);
        let j = s.to_json().render();
        assert!(j.contains("\"median_ns\":3"), "json line: {j}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 256).to_string(), "fft/256");
        assert_eq!(BenchmarkId::from_parameter(1024).to_string(), "1024");
    }
}
