//! Hermetic test infrastructure for the xplace workspace.
//!
//! Every crate in the workspace depends only on the standard library and
//! this crate; the four modules here replace the registry dependencies
//! the seed used, so `cargo build && cargo test` runs fully offline and
//! every stochastic component is bit-reproducible from a seed:
//!
//! - [`rng`] — splitmix64-seeded xoshiro256** with `gen_range` / `f64` /
//!   `shuffle` / `normal` helpers (replaces `rand`),
//! - [`prop`] — a property-testing harness with range/vec/tuple
//!   strategies, halving shrinking and failing-seed replay (replaces
//!   `proptest`),
//! - [`bench`] — an `Instant`-based benchmark harness with warmup,
//!   fixed-sample measurement and median/p95 JSON-lines output
//!   (replaces `criterion`),
//! - [`json`] — a small JSON value/encoder/parser with hand-implemented
//!   [`json::ToJson`] / [`json::FromJson`] traits (replaces the `serde`
//!   derives).

#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use prop::{Config as PropConfig, PropResult, Strategy};
pub use rng::Rng;
