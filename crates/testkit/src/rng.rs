//! Deterministic pseudo-random numbers without external dependencies.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded by expanding a
//! single `u64` through splitmix64 — the construction the `rand` crate
//! documents for seeding xoshiro-family generators. The same seed always
//! produces the same stream on every platform, which is the property every
//! synthetic benchmark, filler initializer and property-test case in this
//! workspace relies on.
//!
//! ```
//! use xplace_testkit::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.f64();
//! assert!((0.0..1.0).contains(&u));
//! assert!((0..10).contains(&a.gen_range(0..10)));
//! ```

/// The splitmix64 step: advances `state` and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words into one (used to derive per-case seeds from a base
/// seed and an index without correlating neighbouring streams).
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (all primitive integer `Range` /
    /// `RangeInclusive` types plus `Range<f64>`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A standard-normal (Gaussian) sample scaled to `mean`/`std_dev`,
    /// via the Box-Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0) by nudging the first uniform away from zero.
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = if u1 <= 0.0 { f64::MIN_POSITIVE } else { u1 };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Derives an independent generator (splits the stream so parallel
    /// consumers never correlate).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled scalar type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

/// Maps a raw `u64` uniformly onto `0..n` by widening multiplication
/// (bias is below 2^-64 * n, irrelevant at test scales).
#[inline]
fn bounded(raw: u64, n: u64) -> u64 {
    ((raw as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_matches_xoshiro256starstar() {
        // First outputs for the splitmix64(0)-expanded state, computed
        // from the published reference implementations.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut rng2 = Rng::seed_from_u64(0);
        assert_eq!(first, (0..3).map(|_| rng2.next_u64()).collect::<Vec<_>>());
        // splitmix64 reference: state 0 yields e220a8397b1dcdaf.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_in_unit_interval_and_covers_it() {
        let mut r = Rng::seed_from_u64(11);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(13);
        for _ in 0..1000 {
            assert!((3..17).contains(&r.gen_range(3..17usize)));
            assert!((0..=4).contains(&r.gen_range(0..=4u8)));
            let v = r.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&v));
            let i = r.gen_range(-10..10i64);
            assert!((-10..10).contains(&i));
        }
        // Degenerate inclusive range.
        assert_eq!(r.gen_range(5..=5usize), 5);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(17);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(1).gen_range(5..5usize);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = Rng::seed_from_u64(19);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(23);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "identity shuffle is astronomically unlikely"
        );
    }

    #[test]
    fn fork_decorrelates() {
        let mut r = Rng::seed_from_u64(29);
        let mut f = r.fork();
        let a: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| f.next_u64()).collect();
        assert_ne!(a, b);
    }
}
