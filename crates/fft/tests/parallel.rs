//! Property tests for the pool-parallel spectral solve: for random density
//! grids and launch widths 2–5, the threaded solve must be **bit-identical**
//! to the serial solve — threads only change scheduling, never arithmetic.

use xplace_fft::{ElectrostaticSolver, FieldSolution, Grid2};
use xplace_testkit::prop::{self, Config, Strategy};
use xplace_testkit::rng::Rng;
use xplace_testkit::{prop_assert, prop_assert_eq, props};

/// A random density grid on one of a few power-of-two rectangles, plus a
/// thread count in 2..=5.
fn case_strategy() -> impl Strategy<Value = (Grid2, usize)> {
    prop::from_fn(|rng: &mut Rng| {
        let dims = [(16usize, 16usize), (32, 16), (16, 64), (64, 64)];
        let (nx, ny) = dims[rng.gen_range(0usize..dims.len())];
        let mut grid = Grid2::new(nx, ny);
        for value in grid.as_mut_slice() {
            *value = rng.gen_range(-10.0..10.0);
        }
        let threads = rng.gen_range(2usize..=5);
        (grid, threads)
    })
}

props! {
    config = Config::with_cases(12);

    /// Parallel spectral solve is bit-equal to the serial solve.
    fn parallel_solve_matches_serial_bitwise(case in case_strategy()) {
        let (density, threads) = case;
        let (nx, ny) = density.dims();
        let mut serial = ElectrostaticSolver::new(nx, ny).expect("solver");
        let mut threaded = serial.clone();
        threaded.set_threads(threads);
        prop_assert_eq!(threaded.threads(), threads);

        let mut want = FieldSolution::new(nx, ny);
        let mut got = FieldSolution::new(nx, ny);
        serial.solve_into(&density, &mut want).expect("serial solve");
        threaded.solve_into(&density, &mut got).expect("threaded solve");

        prop_assert!(
            want.potential.max_abs_diff(&got.potential) == 0.0,
            "potential diverged at threads={}", threads
        );
        prop_assert!(
            want.field_x.max_abs_diff(&got.field_x) == 0.0,
            "field_x diverged at threads={}", threads
        );
        prop_assert!(
            want.field_y.max_abs_diff(&got.field_y) == 0.0,
            "field_y diverged at threads={}", threads
        );
        prop_assert_eq!(want.energy.to_bits(), got.energy.to_bits());
    }

    /// Re-solving on the same threaded solver reuses scratch without drift.
    fn threaded_solver_reuse_is_stable(case in case_strategy()) {
        let (density, threads) = case;
        let (nx, ny) = density.dims();
        let mut solver = ElectrostaticSolver::new(nx, ny).expect("solver");
        solver.set_threads(threads);
        let first = solver.solve(&density).expect("first solve");
        let second = solver.solve(&density).expect("second solve");
        prop_assert!(first.potential.max_abs_diff(&second.potential) == 0.0);
        prop_assert!(first.field_x.max_abs_diff(&second.field_x) == 0.0);
        prop_assert!(first.field_y.max_abs_diff(&second.field_y) == 0.0);
        prop_assert_eq!(first.energy.to_bits(), second.energy.to_bits());
    }
}
