//! Property-based tests of the spectral transforms.

use xplace_fft::{naive, reference, Complex, DctPlan, ElectrostaticSolver, FftPlan, Grid2};
use xplace_testkit::prop::{self, Config, Strategy};
use xplace_testkit::rng::Rng;
use xplace_testkit::{prop_assert, props};

/// A random signal whose length is a power of two up to `2^max_pow`.
fn signal_strategy(max_pow: u32) -> impl Strategy<Value = Vec<f64>> {
    prop::from_fn(move |rng: &mut Rng| {
        let p = rng.gen_range(1u32..=max_pow);
        let n = 1usize << p;
        (0..n)
            .map(|_| rng.gen_range(-100.0..100.0))
            .collect::<Vec<f64>>()
    })
}

props! {
    config = Config::with_cases(64);

    /// forward then inverse FFT recovers the input.
    fn fft_round_trip(values in signal_strategy(9)) {
        let n = values.len();
        let plan = FftPlan::new(n).expect("power-of-two length");
        let mut data: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        plan.forward(&mut data).expect("forward");
        plan.inverse(&mut data).expect("inverse");
        for (c, &v) in data.iter().zip(&values) {
            prop_assert!((c.re - v).abs() < 1e-8, "re {} vs {}", c.re, v);
            prop_assert!(c.im.abs() < 1e-8);
        }
    }

    /// Parseval: energy is preserved up to the 1/N normalization.
    fn fft_parseval(values in signal_strategy(8)) {
        let n = values.len();
        let plan = FftPlan::new(n).expect("power-of-two length");
        let mut data: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let time: f64 = values.iter().map(|v| v * v).sum();
        plan.forward(&mut data).expect("forward");
        let freq: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    /// DCT analysis followed by normalized cosine synthesis is identity.
    fn dct_round_trip(values in signal_strategy(8)) {
        let n = values.len();
        let mut plan = DctPlan::new(n).expect("power-of-two length");
        let mut coeffs = vec![0.0; n];
        plan.analyze(&values, &mut coeffs).expect("analysis");
        for (k, c) in coeffs.iter_mut().enumerate() {
            *c *= 2.0 / n as f64;
            if k == 0 { *c *= 0.5; }
        }
        let mut back = vec![0.0; n];
        plan.cosine_synthesis(&coeffs, &mut back).expect("synthesis");
        for (a, b) in back.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// The electrostatic solver is linear: solve(a*x + b*y) =
    /// a*solve(x) + b*solve(y).
    fn solver_is_linear(
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
        seed in 0u64..1000,
    ) {
        let n = 16;
        let mk = |s: u64| Grid2::from_fn(n, n, |ix, iy| {
            (((ix * 7 + iy * 13) as u64 ^ s) % 17) as f64 / 17.0
        });
        let x = mk(seed);
        let y = mk(seed.wrapping_add(1));
        let mut combo = Grid2::new(n, n);
        for i in 0..n {
            for j in 0..n {
                combo[(i, j)] = a * x[(i, j)] + b * y[(i, j)];
            }
        }
        let mut solver = ElectrostaticSolver::new(n, n).expect("grid ok");
        let sx = solver.solve(&x).expect("solve x");
        let sy = solver.solve(&y).expect("solve y");
        let sc = solver.solve(&combo).expect("solve combo");
        for i in 0..n {
            for j in 0..n {
                let expect = a * sx.field_x[(i, j)] + b * sy.field_x[(i, j)];
                prop_assert!((sc.field_x[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    /// The packed-real DCT path agrees with both the retained complex-FFT
    /// reference path and the naive O(N^2) sums on every transform.
    fn real_path_matches_complex_and_naive(values in signal_strategy(8)) {
        let n = values.len();
        let mut real = DctPlan::new(n).expect("power-of-two length");
        let mut complex = reference::ComplexDct::new(n).expect("power-of-two length");
        let scale = values.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let tol = 1e-9 * scale * n as f64;

        let mut cr = vec![0.0; n];
        let mut cc = vec![0.0; n];
        real.analyze(&values, &mut cr).expect("real analyze");
        complex.analyze(&values, &mut cc).expect("complex analyze");
        let cn = naive::analyze(&values);
        for k in 0..n {
            prop_assert!((cr[k] - cc[k]).abs() < tol, "analyze k={} real {} complex {}", k, cr[k], cc[k]);
            prop_assert!((cr[k] - cn[k]).abs() < tol, "analyze k={} real {} naive {}", k, cr[k], cn[k]);
        }

        let mut sr = vec![0.0; n];
        let mut sc = vec![0.0; n];
        real.cosine_synthesis(&cr, &mut sr).expect("real idct");
        complex.cosine_synthesis(&cr, &mut sc).expect("complex idct");
        let sn = naive::cosine_synthesis(&cr);
        for i in 0..n {
            prop_assert!((sr[i] - sc[i]).abs() < tol);
            prop_assert!((sr[i] - sn[i]).abs() < tol);
        }

        real.sine_synthesis(&cr, &mut sr).expect("real idxst");
        complex.sine_synthesis(&cr, &mut sc).expect("complex idxst");
        let sn = naive::sine_synthesis(&cr);
        for i in 0..n {
            prop_assert!((sr[i] - sc[i]).abs() < tol);
            prop_assert!((sr[i] - sn[i]).abs() < tol);
        }
    }

    /// `sine_synthesis` ignores `coeffs[0]` as documented — on both the
    /// packed-real path and the complex reference path.
    fn sine_synthesis_ignores_k0_on_both_paths(values in signal_strategy(6)) {
        let n = values.len();
        let mut perturbed = values.clone();
        perturbed[0] += 1234.5;
        let mut real = DctPlan::new(n).expect("power-of-two length");
        let mut complex = reference::ComplexDct::new(n).expect("power-of-two length");
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        real.sine_synthesis(&values, &mut a).expect("idxst");
        real.sine_synthesis(&perturbed, &mut b).expect("idxst");
        prop_assert!(a == b, "real path must ignore coeffs[0]");
        complex.sine_synthesis(&values, &mut a).expect("idxst");
        complex.sine_synthesis(&perturbed, &mut b).expect("idxst");
        prop_assert!(a == b, "complex reference path must ignore coeffs[0]");
    }

    /// Non-square grids through the fused solver match a solve of the
    /// transposed density on the transposed solver (x/y symmetry of the
    /// electrostatic system).
    fn rectangular_solver_is_transpose_symmetric(seed in 0u64..1000) {
        let (nx, ny) = (32, 8);
        let density = Grid2::from_fn(nx, ny, |ix, iy| {
            (((ix * 29 + iy * 41) as u64 ^ seed) % 19) as f64 / 19.0
        });
        let transposed = Grid2::from_fn(ny, nx, |ix, iy| density[(iy, ix)]);
        let mut solver = ElectrostaticSolver::new(nx, ny).expect("grid ok");
        let mut solver_t = ElectrostaticSolver::new(ny, nx).expect("grid ok");
        let sol = solver.solve(&density).expect("solve");
        let sol_t = solver_t.solve(&transposed).expect("solve transposed");
        for ix in 0..nx {
            for iy in 0..ny {
                let dp = (sol.potential[(ix, iy)] - sol_t.potential[(iy, ix)]).abs();
                prop_assert!(dp < 1e-9, "potential ({ix},{iy}) differs by {dp}");
                let dx = (sol.field_x[(ix, iy)] - sol_t.field_y[(iy, ix)]).abs();
                prop_assert!(dx < 1e-9, "Ex/Ey^T ({ix},{iy}) differs by {dx}");
                let dy = (sol.field_y[(ix, iy)] - sol_t.field_x[(iy, ix)]).abs();
                prop_assert!(dy < 1e-9, "Ey/Ex^T ({ix},{iy}) differs by {dy}");
            }
        }
    }

    /// The field of any density has zero mean (Neumann boundaries push
    /// nothing out of the region on aggregate).
    fn field_sums_to_zero(seed in 0u64..1000) {
        let n = 16;
        let density = Grid2::from_fn(n, n, |ix, iy| {
            (((ix * 31 + iy * 17) as u64 ^ seed) % 23) as f64
        });
        let mut solver = ElectrostaticSolver::new(n, n).expect("grid ok");
        let sol = solver.solve(&density).expect("solve");
        // Sine-basis fields integrate to... the discrete sum of
        // sin(pi k (2n+1)/(2N)) over n is zero only for even k; the true
        // invariant here: potential has zero mean (the (0,0) mode is
        // dropped).
        prop_assert!(sol.potential.sum().abs() < 1e-6 * (n * n) as f64);
    }
}
