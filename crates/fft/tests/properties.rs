//! Property-based tests of the spectral transforms.

use xplace_fft::{Complex, DctPlan, ElectrostaticSolver, FftPlan, Grid2};
use xplace_testkit::prop::{self, Config, Strategy};
use xplace_testkit::rng::Rng;
use xplace_testkit::{prop_assert, props};

/// A random signal whose length is a power of two up to `2^max_pow`.
fn signal_strategy(max_pow: u32) -> impl Strategy<Value = Vec<f64>> {
    prop::from_fn(move |rng: &mut Rng| {
        let p = rng.gen_range(1u32..=max_pow);
        let n = 1usize << p;
        (0..n)
            .map(|_| rng.gen_range(-100.0..100.0))
            .collect::<Vec<f64>>()
    })
}

props! {
    config = Config::with_cases(64);

    /// forward then inverse FFT recovers the input.
    fn fft_round_trip(values in signal_strategy(9)) {
        let n = values.len();
        let plan = FftPlan::new(n).expect("power-of-two length");
        let mut data: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        plan.forward(&mut data).expect("forward");
        plan.inverse(&mut data).expect("inverse");
        for (c, &v) in data.iter().zip(&values) {
            prop_assert!((c.re - v).abs() < 1e-8, "re {} vs {}", c.re, v);
            prop_assert!(c.im.abs() < 1e-8);
        }
    }

    /// Parseval: energy is preserved up to the 1/N normalization.
    fn fft_parseval(values in signal_strategy(8)) {
        let n = values.len();
        let plan = FftPlan::new(n).expect("power-of-two length");
        let mut data: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let time: f64 = values.iter().map(|v| v * v).sum();
        plan.forward(&mut data).expect("forward");
        let freq: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    /// DCT analysis followed by normalized cosine synthesis is identity.
    fn dct_round_trip(values in signal_strategy(8)) {
        let n = values.len();
        let mut plan = DctPlan::new(n).expect("power-of-two length");
        let mut coeffs = vec![0.0; n];
        plan.analyze(&values, &mut coeffs).expect("analysis");
        for (k, c) in coeffs.iter_mut().enumerate() {
            *c *= 2.0 / n as f64;
            if k == 0 { *c *= 0.5; }
        }
        let mut back = vec![0.0; n];
        plan.cosine_synthesis(&coeffs, &mut back).expect("synthesis");
        for (a, b) in back.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// The electrostatic solver is linear: solve(a*x + b*y) =
    /// a*solve(x) + b*solve(y).
    fn solver_is_linear(
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
        seed in 0u64..1000,
    ) {
        let n = 16;
        let mk = |s: u64| Grid2::from_fn(n, n, |ix, iy| {
            (((ix * 7 + iy * 13) as u64 ^ s) % 17) as f64 / 17.0
        });
        let x = mk(seed);
        let y = mk(seed.wrapping_add(1));
        let mut combo = Grid2::new(n, n);
        for i in 0..n {
            for j in 0..n {
                combo[(i, j)] = a * x[(i, j)] + b * y[(i, j)];
            }
        }
        let mut solver = ElectrostaticSolver::new(n, n).expect("grid ok");
        let sx = solver.solve(&x).expect("solve x");
        let sy = solver.solve(&y).expect("solve y");
        let sc = solver.solve(&combo).expect("solve combo");
        for i in 0..n {
            for j in 0..n {
                let expect = a * sx.field_x[(i, j)] + b * sy.field_x[(i, j)];
                prop_assert!((sc.field_x[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    /// The field of any density has zero mean (Neumann boundaries push
    /// nothing out of the region on aggregate).
    fn field_sums_to_zero(seed in 0u64..1000) {
        let n = 16;
        let density = Grid2::from_fn(n, n, |ix, iy| {
            (((ix * 31 + iy * 17) as u64 ^ seed) % 23) as f64
        });
        let mut solver = ElectrostaticSolver::new(n, n).expect("grid ok");
        let sol = solver.solve(&density).expect("solve");
        // Sine-basis fields integrate to... the discrete sum of
        // sin(pi k (2n+1)/(2N)) over n is zero only for even k; the true
        // invariant here: potential has zero mean (the (0,0) mode is
        // dropped).
        prop_assert!(sol.potential.sum().abs() < 1e-6 * (n * n) as f64);
    }
}
