//! Numerical solution of the placement electrostatic system.
//!
//! Following ePlace (and Xplace, which inherits its formulation), the cell
//! density map is treated as a charge density `rho` on an `nx`-by-`ny` bin
//! grid. The potential `psi` solves Poisson's equation with Neumann
//! boundaries (Eq. (5) of the paper):
//!
//! ```text
//!   laplacian(psi) = -rho,   n . grad(psi) = 0 on the boundary,
//!   integral(rho) = integral(psi) = 0.
//! ```
//!
//! Expanding `rho` in the cosine basis `cos(w_u (i+1/2)) cos(w_v (j+1/2))`
//! with `w_u = pi u / nx`, `w_v = pi v / ny` (which satisfies the Neumann
//! condition automatically) gives the classic spectral solution:
//!
//! ```text
//!   psi_uv   = a_uv / (w_u^2 + w_v^2)
//!   Ex       = sum a_uv w_u/(w_u^2+w_v^2) sin cos      (E = -grad psi)
//!   Ey       = sum a_uv w_v/(w_u^2+w_v^2) cos sin
//! ```
//!
//! which is exactly what DREAMPlace evaluates with its `dct2`/`idct2`/
//! `idxst` kernel family; here the transforms come from [`DctPlan`].

use crate::{DctPlan, FftError, Grid2};
use xplace_parallel::WorkerPool;

/// The potential and electric-field maps produced by one density solve.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSolution {
    /// Electrostatic potential `psi`, one sample per bin.
    pub potential: Grid2,
    /// x-component of the electric field `E = -grad psi` (bin units).
    pub field_x: Grid2,
    /// y-component of the electric field.
    pub field_y: Grid2,
    /// Total system energy `0.5 * sum(rho * psi)`.
    pub energy: f64,
}

impl FieldSolution {
    /// Creates a zero-filled solution for an `nx`-by-`ny` grid.
    pub fn new(nx: usize, ny: usize) -> Self {
        FieldSolution {
            potential: Grid2::new(nx, ny),
            field_x: Grid2::new(nx, ny),
            field_y: Grid2::new(nx, ny),
            energy: 0.0,
        }
    }
}

/// Spectral Poisson solver for the placement density system.
///
/// The solver owns all transform plans and scratch memory; a `solve` call
/// performs one DCT-II analysis batch and one fused synthesis pass that
/// scales the spectrum for the potential, `Ex` and `Ey` in a single sweep
/// and transforms all three streams together, with no allocation when used
/// through [`ElectrostaticSolver::solve_into`].
///
/// ```
/// use xplace_fft::{ElectrostaticSolver, Grid2};
///
/// # fn main() -> Result<(), xplace_fft::FftError> {
/// let mut solver = ElectrostaticSolver::new(32, 32)?;
/// let density = Grid2::from_fn(32, 32, |ix, iy| {
///     let dx = ix as f64 - 15.5;
///     let dy = iy as f64 - 15.5;
///     (-(dx * dx + dy * dy) / 20.0).exp()
/// });
/// let sol = solver.solve(&density)?;
/// // Field pushes outward from the density peak.
/// assert!(sol.field_x[(25, 16)] > 0.0);
/// assert!(sol.field_x[(6, 16)] < 0.0);
/// assert!(sol.energy > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ElectrostaticSolver {
    nx: usize,
    ny: usize,
    /// w_u = pi u / nx.
    wx: Vec<f64>,
    /// w_v = pi v / ny.
    wy: Vec<f64>,
    /// Normalized analysis coefficients a_uv, laid out `v * nx + u` so each
    /// x-transform reads/writes one contiguous row.
    coeffs: Vec<f64>,
    /// y-analysis scratch, laid out `ix * ny + v` (one row per grid row).
    ybuf: Vec<f64>,
    /// x-synthesis scratch for the potential, laid out `v * nx + ix`.
    sbuf_pot: Vec<f64>,
    /// x-synthesis scratch for `Ex` (same layout).
    sbuf_ex: Vec<f64>,
    /// x-synthesis scratch for `Ey` (same layout).
    sbuf_ey: Vec<f64>,
    /// Launch width for the row/column transform batches (>= 1).
    threads: usize,
    /// Pool the transform batches launch on (the process-global pool by
    /// default; batch schedulers inject their own handle).
    pool: &'static WorkerPool,
    /// One transform context per potential worker; `ctxs[0]` also serves the
    /// serial path.
    ctxs: Vec<SolverCtx>,
}

/// Per-worker transform state: private `DctPlan` scratch plus staging
/// buffers, so parallel row batches never contend on plan internals.
#[derive(Debug, Clone)]
struct SolverCtx {
    plan_x: DctPlan,
    plan_y: DctPlan,
    /// Strided-read staging buffer, `3 * max(nx, ny)` long — one row for
    /// each of the potential/`Ex`/`Ey` streams of the fused passes.
    gather: Vec<f64>,
}

/// Splits a staging buffer into three disjoint `len`-sample rows.
fn split3(buf: &mut [f64], len: usize) -> (&mut [f64], &mut [f64], &mut [f64]) {
    let (a, rest) = buf.split_at_mut(len);
    let (b, rest) = rest.split_at_mut(len);
    (a, b, &mut rest[..len])
}

/// Runs `op(ctx, row, dst_row)` for every `row in 0..rows`, where `dst` is a
/// dense `rows x row_len` buffer, batching contiguous row ranges across the
/// global worker pool (at most `width` wide, one [`SolverCtx`] per batch).
///
/// Every row's transform reads only its own inputs and writes only its own
/// `row_len` output slice, so the result is bit-identical for **any** task
/// split; `width <= 1` (or a single row) short-circuits to a plain serial
/// loop with no pool involvement.
fn par_rows<F>(
    pool: &WorkerPool,
    ctxs: &mut [SolverCtx],
    width: usize,
    dst: &mut [f64],
    row_len: usize,
    rows: usize,
    op: F,
) -> Result<(), FftError>
where
    F: Fn(&mut SolverCtx, usize, &mut [f64]) -> Result<(), FftError> + Sync,
{
    debug_assert_eq!(dst.len(), rows * row_len);
    let tasks = width.min(rows).min(ctxs.len()).max(1);
    if tasks <= 1 {
        let ctx = &mut ctxs[0];
        for (row, out) in dst.chunks_mut(row_len).enumerate() {
            op(ctx, row, out)?;
        }
        return Ok(());
    }
    let chunk_rows = rows.div_ceil(tasks);
    let mut states: Vec<(usize, &mut SolverCtx, &mut [f64])> = ctxs
        .iter_mut()
        .zip(dst.chunks_mut(chunk_rows * row_len))
        .enumerate()
        .map(|(i, (ctx, chunk))| (i * chunk_rows, ctx, chunk))
        .collect();
    let results = pool.run_mut(&mut states, tasks, |_, state| {
        let (row0, ctx, chunk) = state;
        for (offset, out) in chunk.chunks_mut(row_len).enumerate() {
            op(ctx, *row0 + offset, out)?;
        }
        Ok(())
    });
    results.into_iter().collect::<Result<Vec<()>, _>>()?;
    Ok(())
}

/// The three-stream sibling of [`par_rows`]: runs
/// `op(ctx, row, d0_row, d1_row, d2_row)` for every `row in 0..rows`, where
/// `d0`/`d1`/`d2` are three dense `rows x row_len` buffers advancing in
/// lockstep (the potential/`Ex`/`Ey` streams of the fused field passes).
///
/// The row-range decomposition is identical to [`par_rows`] — fixed by
/// `rows` and `width`, never by completion order — so the result is
/// bit-identical for any thread count.
fn par_rows3<F>(
    pool: &WorkerPool,
    ctxs: &mut [SolverCtx],
    width: usize,
    d0: &mut [f64],
    d1: &mut [f64],
    d2: &mut [f64],
    row_len: usize,
    rows: usize,
    op: F,
) -> Result<(), FftError>
where
    F: Fn(&mut SolverCtx, usize, &mut [f64], &mut [f64], &mut [f64]) -> Result<(), FftError> + Sync,
{
    debug_assert_eq!(d0.len(), rows * row_len);
    debug_assert_eq!(d1.len(), rows * row_len);
    debug_assert_eq!(d2.len(), rows * row_len);
    let tasks = width.min(rows).min(ctxs.len()).max(1);
    if tasks <= 1 {
        let ctx = &mut ctxs[0];
        for (row, ((o0, o1), o2)) in d0
            .chunks_mut(row_len)
            .zip(d1.chunks_mut(row_len))
            .zip(d2.chunks_mut(row_len))
            .enumerate()
        {
            op(ctx, row, o0, o1, o2)?;
        }
        return Ok(());
    }
    let chunk_rows = rows.div_ceil(tasks);
    type Chunk3<'a> = (
        usize,
        &'a mut SolverCtx,
        &'a mut [f64],
        &'a mut [f64],
        &'a mut [f64],
    );
    let mut states: Vec<Chunk3> = ctxs
        .iter_mut()
        .zip(d0.chunks_mut(chunk_rows * row_len))
        .zip(d1.chunks_mut(chunk_rows * row_len))
        .zip(d2.chunks_mut(chunk_rows * row_len))
        .enumerate()
        .map(|(i, (((ctx, c0), c1), c2))| (i * chunk_rows, ctx, c0, c1, c2))
        .collect();
    let results = pool.run_mut(&mut states, tasks, |_, state| {
        let (row0, ctx, c0, c1, c2) = state;
        for (offset, ((o0, o1), o2)) in c0
            .chunks_mut(row_len)
            .zip(c1.chunks_mut(row_len))
            .zip(c2.chunks_mut(row_len))
            .enumerate()
        {
            op(ctx, *row0 + offset, o0, o1, o2)?;
        }
        Ok(())
    });
    results.into_iter().collect::<Result<Vec<()>, _>>()?;
    Ok(())
}

impl ElectrostaticSolver {
    /// Creates a solver for an `nx`-by-`ny` bin grid.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::EmptyLength`] / [`FftError::NotPowerOfTwo`] when
    /// either dimension is not a nonzero power of two.
    pub fn new(nx: usize, ny: usize) -> Result<Self, FftError> {
        let ctx = SolverCtx {
            plan_x: DctPlan::cached(nx)?,
            plan_y: DctPlan::cached(ny)?,
            gather: vec![0.0; 3 * nx.max(ny)],
        };
        let wx = (0..nx)
            .map(|u| std::f64::consts::PI * u as f64 / nx as f64)
            .collect();
        let wy = (0..ny)
            .map(|v| std::f64::consts::PI * v as f64 / ny as f64)
            .collect();
        Ok(ElectrostaticSolver {
            nx,
            ny,
            wx,
            wy,
            coeffs: vec![0.0; nx * ny],
            ybuf: vec![0.0; nx * ny],
            sbuf_pot: vec![0.0; nx * ny],
            sbuf_ex: vec![0.0; nx * ny],
            sbuf_ey: vec![0.0; nx * ny],
            threads: 1,
            pool: xplace_parallel::global(),
            ctxs: vec![ctx],
        })
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Sets the launch width for the transform batches (clamped to >= 1) and
    /// provisions one private transform context per worker.
    ///
    /// Per-row transforms are arithmetic-independent, so the solution is
    /// bit-identical for every thread count; `threads` only changes how the
    /// row batches are scheduled.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        self.threads = threads;
        if self.ctxs.len() < threads {
            let template = self.ctxs[0].clone();
            self.ctxs.resize(threads, template);
        }
    }

    /// Current launch width for the transform batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Redirects the transform batches onto `pool` (the process-global pool
    /// is used until this is called).
    ///
    /// Per-row transforms are arithmetic-independent and the task-to-row
    /// mapping is fixed, so the solution is bit-identical regardless of
    /// which pool executes the batches.
    pub fn set_pool(&mut self, pool: &'static WorkerPool) {
        self.pool = pool;
    }

    /// Solves the electrostatic system, allocating a fresh [`FieldSolution`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::GridMismatch`] if `density` does not match the
    /// solver dimensions.
    pub fn solve(&mut self, density: &Grid2) -> Result<FieldSolution, FftError> {
        let mut out = FieldSolution::new(self.nx, self.ny);
        self.solve_into(density, &mut out)?;
        Ok(out)
    }

    /// Solves the electrostatic system into a caller-provided buffer,
    /// performing no allocation.
    ///
    /// One DCT-II analysis batch is followed by a single fused pass over
    /// the spectrum: each coefficient row is scaled into the
    /// potential/`Ex`/`Ey` streams in one sweep (`psi = a/w^2`,
    /// `Ex = a w_u/w^2`, `Ey = a w_v/w^2`) and all three streams are
    /// synthesized together — two fused transform batches instead of three
    /// independent scale-plus-synthesize passes.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::GridMismatch`] if `density` or any buffer grid
    /// does not match the solver dimensions.
    pub fn solve_into(&mut self, density: &Grid2, out: &mut FieldSolution) -> Result<(), FftError> {
        self.check_grid(density)?;
        self.check_grid(&out.potential)?;
        self.check_grid(&out.field_x)?;
        self.check_grid(&out.field_y)?;

        self.analyze(density)?;
        self.synthesize_fused(out)?;

        out.energy = 0.5
            * density
                .as_slice()
                .iter()
                .zip(out.potential.as_slice())
                .map(|(r, p)| r * p)
                .sum::<f64>();
        Ok(())
    }

    fn check_grid(&self, grid: &Grid2) -> Result<(), FftError> {
        if grid.dims() != (self.nx, self.ny) {
            return Err(FftError::GridMismatch {
                expected: (self.nx, self.ny),
                actual: grid.dims(),
            });
        }
        Ok(())
    }

    /// 2-D DCT-II analysis into normalized synthesis coefficients `a_uv`
    /// such that `rho = sum a_uv cos cos` exactly.
    ///
    /// Both passes batch their independent 1-D transforms across the worker
    /// pool (`self.threads` wide); each row only reads its own inputs, so the
    /// coefficients are bit-identical for every thread count.
    fn analyze(&mut self, density: &Grid2) -> Result<(), FftError> {
        let (nx, ny) = (self.nx, self.ny);
        // Transform along y (contiguous grid rows) into `ybuf` (ix, v).
        par_rows(
            self.pool,
            &mut self.ctxs,
            self.threads,
            &mut self.ybuf,
            ny,
            nx,
            |ctx, ix, out| ctx.plan_y.analyze(density.row(ix), out),
        )?;
        // Transform along x; write normalized coefficients (v, u).
        let norm = 4.0 / (nx as f64 * ny as f64);
        let ybuf = &self.ybuf;
        par_rows(
            self.pool,
            &mut self.ctxs,
            self.threads,
            &mut self.coeffs,
            nx,
            ny,
            |ctx, v, out| {
                let gather = &mut ctx.gather[..nx];
                for (ix, g) in gather.iter_mut().enumerate() {
                    *g = ybuf[ix * ny + v];
                }
                ctx.plan_x.analyze(gather, out)?;
                for (u, c) in out.iter_mut().enumerate() {
                    let mut beta = norm;
                    if u == 0 {
                        beta *= 0.5;
                    }
                    if v == 0 {
                        beta *= 0.5;
                    }
                    *c *= beta;
                }
                Ok(())
            },
        )
    }

    /// Fused synthesis of all three field maps out of `self.coeffs`.
    ///
    /// The x-stage walks each coefficient row once, producing the scaled
    /// potential/`Ex`/`Ey` coefficient rows in a single autovectorizable
    /// sweep over the spectrum, then runs the three x-transforms (cosine,
    /// sine, cosine) back to back while the row is hot in cache. The
    /// y-stage gathers the three columns together and finishes with the
    /// cosine/cosine/sine y-transforms straight into the output grids.
    /// Parallel structure mirrors [`Self::analyze`].
    fn synthesize_fused(&mut self, out: &mut FieldSolution) -> Result<(), FftError> {
        let (nx, ny) = (self.nx, self.ny);
        let (coeffs, wx, wy) = (&self.coeffs, &self.wx, &self.wy);
        par_rows3(
            self.pool,
            &mut self.ctxs,
            self.threads,
            &mut self.sbuf_pot,
            &mut self.sbuf_ex,
            &mut self.sbuf_ey,
            nx,
            ny,
            |ctx, v, d_pot, d_ex, d_ey| {
                let row = &coeffs[v * nx..(v + 1) * nx];
                let wv = wy[v];
                let wv2 = wv * wv;
                let (c_pot, c_ex, c_ey) = split3(&mut ctx.gather, nx);
                // One pass over the coefficient row produces all three
                // scaled streams; the (0,0) mode is dropped (w^2 = 0).
                let u0 = if wv2 == 0.0 {
                    c_pot[0] = 0.0;
                    c_ex[0] = 0.0;
                    c_ey[0] = 0.0;
                    1
                } else {
                    0
                };
                for ((((p, ex), ey), &a), &wu) in c_pot[u0..]
                    .iter_mut()
                    .zip(c_ex[u0..].iter_mut())
                    .zip(c_ey[u0..].iter_mut())
                    .zip(&row[u0..])
                    .zip(&wx[u0..])
                {
                    let s = a / (wu * wu + wv2);
                    *p = s;
                    *ex = s * wu;
                    *ey = s * wv;
                }
                ctx.plan_x.cosine_synthesis(c_pot, d_pot)?;
                ctx.plan_x.sine_synthesis(c_ex, d_ex)?;
                ctx.plan_x.cosine_synthesis(c_ey, d_ey)
            },
        )?;
        let (sb_pot, sb_ex, sb_ey) = (&self.sbuf_pot, &self.sbuf_ex, &self.sbuf_ey);
        par_rows3(
            self.pool,
            &mut self.ctxs,
            self.threads,
            out.potential.as_mut_slice(),
            out.field_x.as_mut_slice(),
            out.field_y.as_mut_slice(),
            ny,
            nx,
            |ctx, ix, d_pot, d_ex, d_ey| {
                let (g_pot, g_ex, g_ey) = split3(&mut ctx.gather, ny);
                for (v, ((gp, ge), gy)) in g_pot
                    .iter_mut()
                    .zip(g_ex.iter_mut())
                    .zip(g_ey.iter_mut())
                    .enumerate()
                {
                    *gp = sb_pot[v * nx + ix];
                    *ge = sb_ex[v * nx + ix];
                    *gy = sb_ey[v * nx + ix];
                }
                ctx.plan_y.cosine_synthesis(g_pot, d_pot)?;
                ctx.plan_y.cosine_synthesis(g_ex, d_ex)?;
                ctx.plan_y.sine_synthesis(g_ey, d_ey)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mode_density(nx: usize, ny: usize, u: usize, v: usize, amp: f64) -> Grid2 {
        Grid2::from_fn(nx, ny, |ix, iy| {
            let cx = (std::f64::consts::PI * u as f64 * (ix as f64 + 0.5) / nx as f64).cos();
            let cy = (std::f64::consts::PI * v as f64 * (iy as f64 + 0.5) / ny as f64).cos();
            amp * cx * cy
        })
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(ElectrostaticSolver::new(24, 32).is_err());
        assert!(ElectrostaticSolver::new(32, 0).is_err());
    }

    #[test]
    fn rejects_mismatched_grid() {
        let mut solver = ElectrostaticSolver::new(8, 8).unwrap();
        let density = Grid2::new(8, 16);
        assert!(matches!(
            solver.solve(&density),
            Err(FftError::GridMismatch { .. })
        ));
    }

    #[test]
    fn constant_density_gives_zero_field() {
        let mut solver = ElectrostaticSolver::new(16, 16).unwrap();
        let mut density = Grid2::new(16, 16);
        density.fill(3.0);
        let sol = solver.solve(&density).unwrap();
        assert!(sol.field_x.max_abs_diff(&Grid2::new(16, 16)) < 1e-9);
        assert!(sol.field_y.max_abs_diff(&Grid2::new(16, 16)) < 1e-9);
        assert!(sol.potential.max_abs_diff(&Grid2::new(16, 16)) < 1e-9);
        assert!(sol.energy.abs() < 1e-9);
    }

    #[test]
    fn single_mode_matches_analytic_solution() {
        let (nx, ny) = (32, 16);
        let (u, v) = (3, 2);
        let amp = 2.5;
        let mut solver = ElectrostaticSolver::new(nx, ny).unwrap();
        let density = mode_density(nx, ny, u, v, amp);
        let sol = solver.solve(&density).unwrap();

        let wu = std::f64::consts::PI * u as f64 / nx as f64;
        let wv = std::f64::consts::PI * v as f64 / ny as f64;
        let w2 = wu * wu + wv * wv;
        for ix in 0..nx {
            for iy in 0..ny {
                let cx = (wu * (ix as f64 + 0.5)).cos();
                let sx = (wu * (ix as f64 + 0.5)).sin();
                let cy = (wv * (iy as f64 + 0.5)).cos();
                let sy = (wv * (iy as f64 + 0.5)).sin();
                let psi = amp * cx * cy / w2;
                let ex = amp * wu * sx * cy / w2;
                let ey = amp * wv * cx * sy / w2;
                assert!(
                    (sol.potential[(ix, iy)] - psi).abs() < 1e-9,
                    "psi at ({ix},{iy})"
                );
                assert!(
                    (sol.field_x[(ix, iy)] - ex).abs() < 1e-9,
                    "ex at ({ix},{iy})"
                );
                assert!(
                    (sol.field_y[(ix, iy)] - ey).abs() < 1e-9,
                    "ey at ({ix},{iy})"
                );
            }
        }
    }

    #[test]
    fn superposition_of_modes() {
        let (nx, ny) = (16, 16);
        let mut solver = ElectrostaticSolver::new(nx, ny).unwrap();
        let mut d1 = mode_density(nx, ny, 1, 0, 1.0);
        let d2 = mode_density(nx, ny, 0, 2, -0.5);
        let s1 = solver.solve(&d1).unwrap();
        let s2 = solver.solve(&d2).unwrap();
        d1.add_assign_grid(&d2);
        let s12 = solver.solve(&d1).unwrap();
        for ix in 0..nx {
            for iy in 0..ny {
                let expect = s1.potential[(ix, iy)] + s2.potential[(ix, iy)];
                assert!((s12.potential[(ix, iy)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn point_charge_field_points_outward_and_is_symmetric() {
        let n = 64;
        let mut solver = ElectrostaticSolver::new(n, n).unwrap();
        let mut density = Grid2::new(n, n);
        // 2x2 charge centered exactly at the grid midpoint so mirror symmetry
        // is exact on the half-sample grid.
        density[(31, 31)] = 1.0;
        density[(31, 32)] = 1.0;
        density[(32, 31)] = 1.0;
        density[(32, 32)] = 1.0;
        let sol = solver.solve(&density).unwrap();
        assert!(sol.field_x[(40, 31)] > 0.0);
        assert!(sol.field_x[(20, 31)] < 0.0);
        assert!(sol.field_y[(31, 40)] > 0.0);
        assert!(sol.field_y[(31, 20)] < 0.0);
        // Mirror symmetry about the charge.
        for d in 1..20 {
            let right = sol.field_x[(32 + d, 31)];
            let left = sol.field_x[(31 - d, 31)];
            assert!(
                (right + left).abs() < 1e-9,
                "asymmetry at d={d}: {right} vs {left}"
            );
        }
        assert!(sol.energy > 0.0);
    }

    #[test]
    fn discrete_laplacian_of_potential_approximates_negative_density() {
        // For a smooth (band-limited, low-frequency) density the 5-point
        // Laplacian of psi should be close to -(rho - mean(rho)).
        let n = 64;
        let mut solver = ElectrostaticSolver::new(n, n).unwrap();
        let density = Grid2::from_fn(n, n, |ix, iy| {
            let dx = (ix as f64 - 31.5) / 12.0;
            let dy = (iy as f64 - 31.5) / 12.0;
            (-(dx * dx + dy * dy)).exp()
        });
        let mut centered = density.clone();
        centered.remove_mean();
        let sol = solver.solve(&density).unwrap();
        let mut max_err: f64 = 0.0;
        for ix in 8..n - 8 {
            for iy in 8..n - 8 {
                let lap = sol.potential[(ix + 1, iy)]
                    + sol.potential[(ix - 1, iy)]
                    + sol.potential[(ix, iy + 1)]
                    + sol.potential[(ix, iy - 1)]
                    - 4.0 * sol.potential[(ix, iy)];
                max_err = max_err.max((lap + centered[(ix, iy)]).abs());
            }
        }
        assert!(max_err < 0.02, "laplacian residual too large: {max_err}");
    }

    #[test]
    fn field_is_negative_gradient_of_potential() {
        // Central differences of psi should match -E for smooth input.
        let n = 64;
        let mut solver = ElectrostaticSolver::new(n, n).unwrap();
        let density = Grid2::from_fn(n, n, |ix, iy| {
            ((ix as f64) * 0.11).sin() + ((iy as f64) * 0.07).cos()
        });
        let sol = solver.solve(&density).unwrap();
        let mut max_err: f64 = 0.0;
        for ix in 4..n - 4 {
            for iy in 4..n - 4 {
                let gx = 0.5 * (sol.potential[(ix + 1, iy)] - sol.potential[(ix - 1, iy)]);
                let gy = 0.5 * (sol.potential[(ix, iy + 1)] - sol.potential[(ix, iy - 1)]);
                max_err = max_err.max((gx + sol.field_x[(ix, iy)]).abs());
                max_err = max_err.max((gy + sol.field_y[(ix, iy)]).abs());
            }
        }
        assert!(max_err < 0.05, "field/gradient mismatch: {max_err}");
    }

    #[test]
    fn solve_into_reuses_buffers_and_matches_solve() {
        let n = 16;
        let mut solver = ElectrostaticSolver::new(n, n).unwrap();
        let density = Grid2::from_fn(n, n, |ix, iy| ((ix * 3 + iy) % 7) as f64);
        let fresh = solver.solve(&density).unwrap();
        let mut reused = FieldSolution::new(n, n);
        solver.solve_into(&density, &mut reused).unwrap();
        assert!(fresh.potential.max_abs_diff(&reused.potential) < 1e-12);
        assert!(fresh.field_x.max_abs_diff(&reused.field_x) < 1e-12);
        assert!(fresh.field_y.max_abs_diff(&reused.field_y) < 1e-12);
        assert!((fresh.energy - reused.energy).abs() < 1e-12);
    }

    #[test]
    fn rectangular_grids_are_supported() {
        let mut solver = ElectrostaticSolver::new(64, 16).unwrap();
        let density = Grid2::from_fn(64, 16, |ix, iy| {
            if (20..28).contains(&ix) && (6..10).contains(&iy) {
                1.0
            } else {
                0.0
            }
        });
        let sol = solver.solve(&density).unwrap();
        assert!(sol.field_x[(40, 8)] > 0.0);
        assert!(sol.field_x[(10, 8)] < 0.0);
    }
}
