//! Spectral numerics for the `xplace` placement framework.
//!
//! This crate is the from-scratch replacement for the GPU FFT stack the
//! original Xplace paper obtains from PyTorch (`rfft2`/`irfft2`). It provides:
//!
//! * [`Complex`] — a minimal double-precision complex number,
//! * [`FftPlan`] — an iterative radix-2 complex FFT with precomputed twiddles,
//! * [`RealFftPlan`] — a packed real-input FFT: a length-`N` complex plan
//!   computing a length-`2N` real transform over the non-redundant half
//!   spectrum,
//! * [`DctPlan`] — FFT-backed DCT-II analysis and DCT-III / DXST synthesis
//!   transforms (the `dct2`/`idct`/`idxst` family used by ePlace-style
//!   electrostatic placers),
//! * [`Grid2`] — a dense row-major 2-D grid of `f64` samples,
//! * [`ElectrostaticSolver`] — the numerical solution of the placement
//!   electrostatic system (Poisson's equation with Neumann boundary
//!   conditions, Eq. (5) of the paper), producing the potential map and the
//!   electric-field maps that drive the density gradient.
//!
//! # Example
//!
//! ```
//! use xplace_fft::{ElectrostaticSolver, Grid2};
//!
//! # fn main() -> Result<(), xplace_fft::FftError> {
//! let mut solver = ElectrostaticSolver::new(64, 64)?;
//! let mut density = Grid2::new(64, 64);
//! density[(32, 32)] = 1.0; // a point charge in the middle
//! let fields = solver.solve(&density)?;
//! // The field points away from the charge.
//! assert!(fields.field_x[(40, 32)] > 0.0);
//! assert!(fields.field_x[(20, 32)] < 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod complex;
mod dct;
mod error;
mod fft;
mod grid;
mod spectral;

pub use complex::Complex;
#[doc(hidden)]
pub use dct::{naive, reference};
pub use dct::{
    plan_cache_evictions, plan_cache_stats, DctPlan, PlanCache, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use error::FftError;
pub use fft::{FftPlan, RealFftPlan};
pub use grid::Grid2;
pub use spectral::{ElectrostaticSolver, FieldSolution};

/// Returns `true` if `n` is a power of two (and nonzero).
///
/// ```
/// assert!(xplace_fft::is_power_of_two(64));
/// assert!(!xplace_fft::is_power_of_two(48));
/// ```
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Rounds `n` up to the next power of two, saturating at `usize::MAX/2 + 1`.
///
/// ```
/// assert_eq!(xplace_fft::next_power_of_two(100), 128);
/// assert_eq!(xplace_fft::next_power_of_two(128), 128);
/// assert_eq!(xplace_fft::next_power_of_two(0), 1);
/// ```
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}
