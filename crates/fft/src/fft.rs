use crate::{Complex, FftError};

/// A radix-2 decimation-in-time FFT plan with precomputed twiddle factors
/// and bit-reversal permutation for a fixed power-of-two length.
///
/// Creating a plan is `O(n)`; every transform is `O(n log n)` with no
/// allocation. The same plan serves both forward and inverse transforms.
///
/// ```
/// use xplace_fft::{Complex, FftPlan};
///
/// # fn main() -> Result<(), xplace_fft::FftError> {
/// let plan = FftPlan::new(8)?;
/// let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
/// let original = data.clone();
/// plan.forward(&mut data)?;
/// plan.inverse(&mut data)?;
/// for (a, b) in data.iter().zip(&original) {
///     assert!((a.re - b.re).abs() < 1e-12 && a.im.abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    len: usize,
    /// Twiddles for the forward transform, laid out stage by stage.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation indices.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::EmptyLength`] for `len == 0` and
    /// [`FftError::NotPowerOfTwo`] when `len` is not a power of two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len == 0 {
            return Err(FftError::EmptyLength);
        }
        if !crate::is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo(len));
        }
        let stages = len.trailing_zeros() as usize;
        // Twiddles: for each stage s (half-size m = 2^s), the m roots
        // e^{-i pi k / m}, k = 0..m. Total = len - 1 entries.
        let mut twiddles = Vec::with_capacity(len.saturating_sub(1));
        for s in 0..stages {
            let half = 1usize << s;
            for k in 0..half {
                let theta = -std::f64::consts::PI * k as f64 / half as f64;
                twiddles.push(Complex::from_angle(theta));
            }
        }
        let mut bitrev = vec![0u32; len];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            let rev = (i as u32).reverse_bits() >> (32 - stages.max(1) as u32);
            *slot = if stages == 0 { 0 } else { rev };
        }
        Ok(FftPlan {
            len,
            twiddles,
            bitrev,
        })
    }

    /// The transform length this plan was created for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, data: &[Complex]) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: data.len(),
            });
        }
        Ok(())
    }

    /// In-place forward transform: `X[k] = sum_n x[n] e^{-2 pi i n k / N}`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        self.permute(data);
        self.butterflies(data, false);
        Ok(())
    }

    /// In-place inverse transform, including the `1/N` normalization:
    /// `x[n] = (1/N) sum_k X[k] e^{+2 pi i n k / N}`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        self.permute(data);
        self.butterflies(data, true);
        let scale = 1.0 / self.len as f64;
        for c in data.iter_mut() {
            *c = c.scale(scale);
        }
        Ok(())
    }

    /// In-place inverse transform without the `1/N` normalization.
    ///
    /// Useful when the normalization is folded into a caller-side scale
    /// factor (as the DCT synthesis transforms do).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn inverse_unscaled(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        self.permute(data);
        self.butterflies(data, true);
        Ok(())
    }

    #[inline]
    fn permute(&self, data: &mut [Complex]) {
        for i in 0..self.len {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex], inverse: bool) {
        let stages = self.len.trailing_zeros() as usize;
        let mut tw_base = 0usize;
        for s in 0..stages {
            let half = 1usize << s;
            let step = half << 1;
            let tw = &self.twiddles[tw_base..tw_base + half];
            let mut start = 0;
            while start < self.len {
                for k in 0..half {
                    let w = if inverse { tw[k].conj() } else { tw[k] };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
                start += step;
            }
            tw_base += half;
        }
    }
}

/// A packed real-input FFT plan: a length-`N` complex plan computing a
/// length-`2N` real transform via the standard split/recombine identities.
///
/// The forward transform packs the even/odd samples of a real signal
/// `x[0..2N]` into one complex signal `z[j] = x[2j] + i x[2j+1]`, runs the
/// half-length complex FFT, and recombines the spectrum — half the
/// butterflies and half the memory traffic of transforming the real signal
/// through a length-`2N` complex plan. Because the spectrum of a real
/// signal is Hermitian (`X[2N-k] = conj(X[k])`), only the non-redundant
/// half `X[0..=N]` is stored.
///
/// The inverse accepts such a half spectrum and reconstructs the real
/// signal scaled by `2N` (matching [`FftPlan::inverse_unscaled`], so
/// callers fold the normalization into their own coefficient scaling).
///
/// Every spectrum slot is written exactly once by a fixed recombination
/// schedule, so results are bitwise deterministic — there is no
/// "second write" of the conjugate-symmetric pair that could reorder
/// floating-point operations.
///
/// ```
/// use xplace_fft::RealFftPlan;
///
/// # fn main() -> Result<(), xplace_fft::FftError> {
/// let mut plan = RealFftPlan::new(8)?;
/// let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.4).sin()).collect();
/// let mut spectrum = vec![xplace_fft::Complex::ZERO; 5]; // N/2 + 1 slots
/// plan.forward(&x, &mut spectrum)?;
/// let mut back = vec![0.0; 8];
/// plan.inverse_unscaled(&spectrum, &mut back)?;
/// for (a, b) in back.iter().zip(&x) {
///     assert!((a / 8.0 - b).abs() < 1e-12); // inverse is scaled by 2N = 8
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    /// Real signal length `2N`.
    real_len: usize,
    /// The length-`N` complex plan doing the actual butterflies.
    half: FftPlan,
    /// `e^{-i pi k / N}` for `k = 0..=N/2` (the recombination twiddles).
    twiddles: Vec<Complex>,
    /// Packed complex work buffer of length `N`.
    packed: Vec<Complex>,
}

impl RealFftPlan {
    /// Creates a plan for real transforms of length `real_len`
    /// (a power of two, at least 2).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::EmptyLength`] for `real_len < 2` and
    /// [`FftError::NotPowerOfTwo`] when `real_len` is not a power of two.
    pub fn new(real_len: usize) -> Result<Self, FftError> {
        if real_len < 2 {
            return Err(FftError::EmptyLength);
        }
        if !crate::is_power_of_two(real_len) {
            return Err(FftError::NotPowerOfTwo(real_len));
        }
        let n = real_len / 2;
        let half = FftPlan::new(n)?;
        let twiddles = (0..=n / 2)
            .map(|k| Complex::from_angle(-std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Ok(RealFftPlan {
            real_len,
            half,
            twiddles,
            packed: vec![Complex::ZERO; n],
        })
    }

    /// The real signal length `2N` this plan transforms.
    pub fn len(&self) -> usize {
        self.real_len
    }

    /// `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.real_len == 0
    }

    /// Number of half-spectrum slots: `N + 1` where `N = real_len / 2`.
    pub fn spectrum_len(&self) -> usize {
        self.real_len / 2 + 1
    }

    fn check(&self, real: usize, spectrum: usize) -> Result<(), FftError> {
        if real != self.real_len {
            return Err(FftError::LengthMismatch {
                expected: self.real_len,
                actual: real,
            });
        }
        if spectrum != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                actual: spectrum,
            });
        }
        Ok(())
    }

    /// Forward real transform: fills `spectrum[k] = sum_n input[n]
    /// e^{-2 pi i n k / 2N}` for `k = 0..=N`.
    ///
    /// The remaining half of the full spectrum is implied by Hermitian
    /// symmetry and never materialized.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] unless `input.len()` is the
    /// plan length and `spectrum.len()` is [`RealFftPlan::spectrum_len`].
    pub fn forward(&mut self, input: &[f64], spectrum: &mut [Complex]) -> Result<(), FftError> {
        self.check(input.len(), spectrum.len())?;
        let n = self.real_len / 2;
        for (z, pair) in self.packed.iter_mut().zip(input.chunks_exact(2)) {
            *z = Complex::new(pair[0], pair[1]);
        }
        self.half.forward(&mut self.packed)?;
        // Split Z into the spectra of the even samples (E) and odd samples
        // (O), then recombine: X[k] = E[k] + w^k O[k] with w = e^{-i pi/N}.
        let z0 = self.packed[0];
        spectrum[0] = Complex::new(z0.re + z0.im, 0.0);
        spectrum[n] = Complex::new(z0.re - z0.im, 0.0);
        for k in 1..=n / 2 {
            let zk = self.packed[k];
            let zn = self.packed[n - k];
            let e = Complex::new(0.5 * (zk.re + zn.re), 0.5 * (zk.im - zn.im));
            let o = Complex::new(0.5 * (zk.im + zn.im), 0.5 * (zn.re - zk.re));
            let t = self.twiddles[k] * o;
            spectrum[k] = e + t;
            if k != n - k {
                spectrum[n - k] = (e - t).conj();
            }
        }
        Ok(())
    }

    /// Inverse real transform of a Hermitian half spectrum, scaled by the
    /// real length `2N` (the counterpart of [`FftPlan::inverse_unscaled`]).
    ///
    /// Only `spectrum[k].re` is read for `k = 0` and `k = N` (those bins
    /// are real for any real signal).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] unless `output.len()` is the
    /// plan length and `spectrum.len()` is [`RealFftPlan::spectrum_len`].
    pub fn inverse_unscaled(
        &mut self,
        spectrum: &[Complex],
        output: &mut [f64],
    ) -> Result<(), FftError> {
        self.check(output.len(), spectrum.len())?;
        let n = self.real_len / 2;
        // Undo the forward recombination (without the 1/2 factors, which
        // supplies the extra factor of 2 over the length-N unscaled
        // inverse): Z[k] = A[k] + i t^k B[k] with t = e^{+i pi/N},
        // A[k] = X[k] + conj(X[N-k]), B[k] = X[k] - conj(X[N-k]).
        let (x0, xn) = (spectrum[0].re, spectrum[n].re);
        self.packed[0] = Complex::new(x0 + xn, x0 - xn);
        for k in 1..=n / 2 {
            let xk = spectrum[k];
            let xn = spectrum[n - k];
            let a = Complex::new(xk.re + xn.re, xk.im - xn.im);
            let b = Complex::new(xk.re - xn.re, xk.im + xn.im);
            let c = self.twiddles[k].conj() * b;
            let u = Complex::new(-c.im, c.re);
            self.packed[k] = a + u;
            if k != n - k {
                self.packed[n - k] = (a - u).conj();
            }
        }
        self.half.inverse_unscaled(&mut self.packed)?;
        for (pair, z) in output.chunks_exact_mut(2).zip(&self.packed) {
            pair[0] = z.re;
            pair[1] = z.im;
        }
        Ok(())
    }
}

/// Reference `O(n^2)` DFT, used for validating the fast path in tests.
#[cfg(test)]
pub(crate) fn naive_dft(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (i, &x) in input.iter().enumerate() {
            let theta = sign * std::f64::consts::TAU * (k * i) as f64 / n as f64;
            acc += x * Complex::from_angle(theta);
        }
        if inverse {
            acc = acc / n as f64;
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    #[test]
    fn rejects_invalid_lengths() {
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::EmptyLength);
        assert_eq!(FftPlan::new(12).unwrap_err(), FftError::NotPowerOfTwo(12));
        assert!(FftPlan::new(1).is_ok());
    }

    #[test]
    fn rejects_mismatched_buffer() {
        let plan = FftPlan::new(8).unwrap();
        let mut data = vec![Complex::ZERO; 4];
        assert!(matches!(
            plan.forward(&mut data),
            Err(FftError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut data = vec![Complex::new(3.5, -1.25)];
        plan.forward(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(3.5, -1.25));
        plan.inverse(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(3.5, -1.25));
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64, 128] {
            let plan = FftPlan::new(n).unwrap();
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let expected = naive_dft(&input, false);
            let mut data = input.clone();
            plan.forward(&mut data).unwrap();
            for (a, b) in data.iter().zip(&expected) {
                assert!(close(*a, *b, 1e-9), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let expected = naive_dft(&input, true);
        let mut data = input.clone();
        plan.inverse(&mut data).unwrap();
        for (a, b) in data.iter().zip(&expected) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 256;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin() * 10.0, (i as f64 * 0.1).cos()))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse(&mut data).unwrap();
        for (a, b) in data.iter().zip(&input) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn impulse_transforms_to_constant_spectrum() {
        let n = 16;
        let plan = FftPlan::new(n).unwrap();
        let mut data = vec![Complex::ZERO; n];
        data[0] = Complex::ONE;
        plan.forward(&mut data).unwrap();
        for c in &data {
            assert!(close(*c, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        let time_energy: f64 = input.iter().map(|c| c.norm_sqr()).sum();
        let mut data = input;
        plan.forward(&mut data).unwrap();
        let freq_energy: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let xs: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let ys: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let mut sum: Vec<Complex> = xs.iter().zip(&ys).map(|(a, b)| *a + *b).collect();
        let mut fx = xs.clone();
        let mut fy = ys.clone();
        plan.forward(&mut sum).unwrap();
        plan.forward(&mut fx).unwrap();
        plan.forward(&mut fy).unwrap();
        for i in 0..n {
            assert!(close(sum[i], fx[i] + fy[i], 1e-9));
        }
    }

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.7).sin() + 0.25 * (i as f64 * 1.9).cos())
            .collect()
    }

    #[test]
    fn real_plan_rejects_invalid_lengths() {
        assert_eq!(RealFftPlan::new(0).unwrap_err(), FftError::EmptyLength);
        assert_eq!(RealFftPlan::new(1).unwrap_err(), FftError::EmptyLength);
        assert_eq!(
            RealFftPlan::new(12).unwrap_err(),
            FftError::NotPowerOfTwo(12)
        );
        assert_eq!(RealFftPlan::new(2).unwrap().spectrum_len(), 2);
    }

    #[test]
    fn real_plan_rejects_mismatched_buffers() {
        let mut plan = RealFftPlan::new(8).unwrap();
        let x = vec![0.0; 8];
        let mut spec = vec![Complex::ZERO; 4]; // needs 5
        assert!(matches!(
            plan.forward(&x, &mut spec),
            Err(FftError::LengthMismatch {
                expected: 5,
                actual: 4
            })
        ));
        let mut spec = vec![Complex::ZERO; 5];
        let mut short = vec![0.0; 6];
        assert!(plan.forward(&short, &mut spec).is_err());
        assert!(plan.inverse_unscaled(&spec, &mut short).is_err());
    }

    #[test]
    fn real_forward_matches_naive_dft() {
        for &len in &[2usize, 4, 8, 16, 64, 256] {
            let mut plan = RealFftPlan::new(len).unwrap();
            let x = real_signal(len);
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            plan.forward(&x, &mut spec).unwrap();
            let full: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
            let expected = naive_dft(&full, false);
            for (k, s) in spec.iter().enumerate() {
                assert!(close(*s, expected[k], 1e-9), "len={len} k={k}: {s}");
            }
            // Edge bins of a real signal are purely real.
            assert_eq!(spec[0].im, 0.0);
            assert_eq!(spec[len / 2].im, 0.0);
        }
    }

    #[test]
    fn real_round_trip_is_scaled_by_len() {
        for &len in &[2usize, 4, 32, 128] {
            let mut plan = RealFftPlan::new(len).unwrap();
            let x = real_signal(len);
            let mut spec = vec![Complex::ZERO; plan.spectrum_len()];
            let mut back = vec![0.0; len];
            plan.forward(&x, &mut spec).unwrap();
            plan.inverse_unscaled(&spec, &mut back).unwrap();
            for (a, b) in back.iter().zip(&x) {
                assert!((a / len as f64 - b).abs() < 1e-10, "len={len}");
            }
        }
    }

    #[test]
    fn real_inverse_matches_complex_inverse_on_hermitian_spectrum() {
        // Feed the same Hermitian spectrum to both inverse paths; the real
        // path must agree with the full complex `inverse_unscaled`.
        let len = 32;
        let n = len / 2;
        let mut rplan = RealFftPlan::new(len).unwrap();
        let cplan = FftPlan::new(len).unwrap();
        let mut half = vec![Complex::ZERO; n + 1];
        half[0] = Complex::new(1.5, 0.0);
        half[n] = Complex::new(-0.75, 0.0);
        for (k, slot) in half.iter_mut().enumerate().take(n).skip(1) {
            *slot = Complex::new((k as f64 * 0.3).sin(), (k as f64 * 0.9).cos());
        }
        let mut full = vec![Complex::ZERO; len];
        full[..=n].copy_from_slice(&half);
        for k in 1..n {
            full[len - k] = half[k].conj();
        }
        let mut real_out = vec![0.0; len];
        rplan.inverse_unscaled(&half, &mut real_out).unwrap();
        cplan.inverse_unscaled(&mut full).unwrap();
        for (r, c) in real_out.iter().zip(&full) {
            assert!((r - c.re).abs() < 1e-9 && c.im.abs() < 1e-9);
        }
    }

    #[test]
    fn real_plan_length_two_is_exact() {
        let mut plan = RealFftPlan::new(2).unwrap();
        let x = [3.0, -1.0];
        let mut spec = vec![Complex::ZERO; 2];
        plan.forward(&x, &mut spec).unwrap();
        assert_eq!(spec[0], Complex::new(2.0, 0.0));
        assert_eq!(spec[1], Complex::new(4.0, 0.0));
        let mut back = [0.0; 2];
        plan.inverse_unscaled(&spec, &mut back).unwrap();
        assert_eq!(back, [6.0, -2.0]); // 2N * x
    }

    #[test]
    fn inverse_unscaled_differs_by_n() {
        let n = 8;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64 + 1.0, 0.0)).collect();
        let mut a = input.clone();
        let mut b = input;
        plan.inverse(&mut a).unwrap();
        plan.inverse_unscaled(&mut b).unwrap();
        for i in 0..n {
            assert!(close(b[i], a[i].scale(n as f64), 1e-9));
        }
    }
}
