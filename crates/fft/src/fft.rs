use crate::{Complex, FftError};

/// A radix-2 decimation-in-time FFT plan with precomputed twiddle factors
/// and bit-reversal permutation for a fixed power-of-two length.
///
/// Creating a plan is `O(n)`; every transform is `O(n log n)` with no
/// allocation. The same plan serves both forward and inverse transforms.
///
/// ```
/// use xplace_fft::{Complex, FftPlan};
///
/// # fn main() -> Result<(), xplace_fft::FftError> {
/// let plan = FftPlan::new(8)?;
/// let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
/// let original = data.clone();
/// plan.forward(&mut data)?;
/// plan.inverse(&mut data)?;
/// for (a, b) in data.iter().zip(&original) {
///     assert!((a.re - b.re).abs() < 1e-12 && a.im.abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    len: usize,
    /// Twiddles for the forward transform, laid out stage by stage.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation indices.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::EmptyLength`] for `len == 0` and
    /// [`FftError::NotPowerOfTwo`] when `len` is not a power of two.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len == 0 {
            return Err(FftError::EmptyLength);
        }
        if !crate::is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo(len));
        }
        let stages = len.trailing_zeros() as usize;
        // Twiddles: for each stage s (half-size m = 2^s), the m roots
        // e^{-i pi k / m}, k = 0..m. Total = len - 1 entries.
        let mut twiddles = Vec::with_capacity(len.saturating_sub(1));
        for s in 0..stages {
            let half = 1usize << s;
            for k in 0..half {
                let theta = -std::f64::consts::PI * k as f64 / half as f64;
                twiddles.push(Complex::from_angle(theta));
            }
        }
        let mut bitrev = vec![0u32; len];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            let rev = (i as u32).reverse_bits() >> (32 - stages.max(1) as u32);
            *slot = if stages == 0 { 0 } else { rev };
        }
        Ok(FftPlan {
            len,
            twiddles,
            bitrev,
        })
    }

    /// The transform length this plan was created for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, data: &[Complex]) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: data.len(),
            });
        }
        Ok(())
    }

    /// In-place forward transform: `X[k] = sum_n x[n] e^{-2 pi i n k / N}`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        self.permute(data);
        self.butterflies(data, false);
        Ok(())
    }

    /// In-place inverse transform, including the `1/N` normalization:
    /// `x[n] = (1/N) sum_k X[k] e^{+2 pi i n k / N}`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        self.permute(data);
        self.butterflies(data, true);
        let scale = 1.0 / self.len as f64;
        for c in data.iter_mut() {
            *c = c.scale(scale);
        }
        Ok(())
    }

    /// In-place inverse transform without the `1/N` normalization.
    ///
    /// Useful when the normalization is folded into a caller-side scale
    /// factor (as the DCT synthesis transforms do).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from the
    /// plan length.
    pub fn inverse_unscaled(&self, data: &mut [Complex]) -> Result<(), FftError> {
        self.check(data)?;
        self.permute(data);
        self.butterflies(data, true);
        Ok(())
    }

    #[inline]
    fn permute(&self, data: &mut [Complex]) {
        for i in 0..self.len {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex], inverse: bool) {
        let stages = self.len.trailing_zeros() as usize;
        let mut tw_base = 0usize;
        for s in 0..stages {
            let half = 1usize << s;
            let step = half << 1;
            let tw = &self.twiddles[tw_base..tw_base + half];
            let mut start = 0;
            while start < self.len {
                for k in 0..half {
                    let w = if inverse { tw[k].conj() } else { tw[k] };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
                start += step;
            }
            tw_base += half;
        }
    }
}

/// Reference `O(n^2)` DFT, used for validating the fast path in tests.
#[cfg(test)]
pub(crate) fn naive_dft(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (i, &x) in input.iter().enumerate() {
            let theta = sign * std::f64::consts::TAU * (k * i) as f64 / n as f64;
            acc += x * Complex::from_angle(theta);
        }
        if inverse {
            acc = acc / n as f64;
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    #[test]
    fn rejects_invalid_lengths() {
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::EmptyLength);
        assert_eq!(FftPlan::new(12).unwrap_err(), FftError::NotPowerOfTwo(12));
        assert!(FftPlan::new(1).is_ok());
    }

    #[test]
    fn rejects_mismatched_buffer() {
        let plan = FftPlan::new(8).unwrap();
        let mut data = vec![Complex::ZERO; 4];
        assert!(matches!(
            plan.forward(&mut data),
            Err(FftError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut data = vec![Complex::new(3.5, -1.25)];
        plan.forward(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(3.5, -1.25));
        plan.inverse(&mut data).unwrap();
        assert_eq!(data[0], Complex::new(3.5, -1.25));
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64, 128] {
            let plan = FftPlan::new(n).unwrap();
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let expected = naive_dft(&input, false);
            let mut data = input.clone();
            plan.forward(&mut data).unwrap();
            for (a, b) in data.iter().zip(&expected) {
                assert!(close(*a, *b, 1e-9), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn inverse_matches_naive_inverse() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let expected = naive_dft(&input, true);
        let mut data = input.clone();
        plan.inverse(&mut data).unwrap();
        for (a, b) in data.iter().zip(&expected) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 256;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin() * 10.0, (i as f64 * 0.1).cos()))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse(&mut data).unwrap();
        for (a, b) in data.iter().zip(&input) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn impulse_transforms_to_constant_spectrum() {
        let n = 16;
        let plan = FftPlan::new(n).unwrap();
        let mut data = vec![Complex::ZERO; n];
        data[0] = Complex::ONE;
        plan.forward(&mut data).unwrap();
        for c in &data {
            assert!(close(*c, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        let time_energy: f64 = input.iter().map(|c| c.norm_sqr()).sum();
        let mut data = input;
        plan.forward(&mut data).unwrap();
        let freq_energy: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let plan = FftPlan::new(n).unwrap();
        let xs: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let ys: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i * i) as f64)).collect();
        let mut sum: Vec<Complex> = xs.iter().zip(&ys).map(|(a, b)| *a + *b).collect();
        let mut fx = xs.clone();
        let mut fy = ys.clone();
        plan.forward(&mut sum).unwrap();
        plan.forward(&mut fx).unwrap();
        plan.forward(&mut fy).unwrap();
        for i in 0..n {
            assert!(close(sum[i], fx[i] + fy[i], 1e-9));
        }
    }

    #[test]
    fn inverse_unscaled_differs_by_n() {
        let n = 8;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64 + 1.0, 0.0)).collect();
        let mut a = input.clone();
        let mut b = input;
        plan.inverse(&mut a).unwrap();
        plan.inverse_unscaled(&mut b).unwrap();
        for i in 0..n {
            assert!(close(b[i], a[i].scale(n as f64), 1e-9));
        }
    }
}
