use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A minimal double-precision complex number used by the FFT kernels.
///
/// Only the operations needed by the spectral transforms are provided; this
/// is intentionally not a general-purpose complex arithmetic library.
///
/// ```
/// use xplace_fft::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number on the unit circle, `e^{i theta}`.
    ///
    /// ```
    /// use xplace_fft::Complex;
    /// let w = Complex::from_angle(std::f64::consts::PI);
    /// assert!((w.re + 1.0).abs() < 1e-12 && w.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `sqrt(re^2 + im^2)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, c| acc + c)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -2.0);
        let b = Complex::new(-1.0, 4.0);
        assert_eq!(a + b, Complex::new(2.0, 2.0));
        assert_eq!(a - b, Complex::new(4.0, -6.0));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(-a, Complex::new(-3.0, 2.0));
    }

    #[test]
    fn multiplication_matches_manual_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -5.0);
        // (2+3i)(4-5i) = 8 - 10i + 12i + 15 = 23 + 2i
        assert_eq!(a * b, Complex::new(23.0, 2.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!((a * a.conj()).re, a.norm_sqr());
    }

    #[test]
    fn from_angle_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::TAU / 16.0;
            let w = Complex::from_angle(theta);
            assert!((w.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_and_assign_ops() {
        let xs = [Complex::new(1.0, 1.0), Complex::new(2.0, -1.0)];
        let s: Complex = xs.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, 0.0));
        let mut a = Complex::new(1.0, 0.0);
        a += Complex::I;
        a -= Complex::ONE;
        a *= Complex::new(0.0, -1.0);
        assert_eq!(a, Complex::new(1.0, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scale_and_div() {
        let a = Complex::new(2.0, -4.0);
        assert_eq!(a * 0.5, Complex::new(1.0, -2.0));
        assert_eq!(a / 2.0, Complex::new(1.0, -2.0));
    }
}
