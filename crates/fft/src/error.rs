use std::error::Error;
use std::fmt;

/// Errors produced by the spectral transforms in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FftError {
    /// The transform length must be a power of two; the offending length is
    /// carried in the error.
    NotPowerOfTwo(usize),
    /// The transform length must be nonzero.
    EmptyLength,
    /// The supplied buffer length does not match the plan length.
    LengthMismatch {
        /// Length the plan was created for.
        expected: usize,
        /// Length of the buffer that was actually supplied.
        actual: usize,
    },
    /// A 2-D grid did not match the solver's dimensions.
    GridMismatch {
        /// Expected `(nx, ny)` dimensions.
        expected: (usize, usize),
        /// Actual `(nx, ny)` dimensions.
        actual: (usize, usize),
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => {
                write!(f, "transform length {n} is not a power of two")
            }
            FftError::EmptyLength => write!(f, "transform length must be nonzero"),
            FftError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match plan length {expected}"
                )
            }
            FftError::GridMismatch { expected, actual } => write!(
                f,
                "grid dimensions {}x{} do not match solver dimensions {}x{}",
                actual.0, actual.1, expected.0, expected.1
            ),
        }
    }
}

impl Error for FftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msg = FftError::NotPowerOfTwo(48).to_string();
        assert!(msg.contains("48"));
        assert!(msg.starts_with(char::is_lowercase));
        let msg = FftError::LengthMismatch {
            expected: 8,
            actual: 9,
        }
        .to_string();
        assert!(msg.contains('8') && msg.contains('9'));
        let msg = FftError::GridMismatch {
            expected: (4, 4),
            actual: (2, 8),
        }
        .to_string();
        assert!(msg.contains("2x8") && msg.contains("4x4"));
        assert!(!FftError::EmptyLength.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<FftError>();
    }
}
