use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major 2-D grid of `f64` samples.
///
/// The grid is indexed by `(ix, iy)` where `ix` selects the row
/// (x-direction bin) and `iy` the column (y-direction bin); storage is
/// contiguous along `iy`. This is the carrier type for density maps,
/// potential maps and field maps throughout the framework.
///
/// ```
/// use xplace_fft::Grid2;
///
/// let mut g = Grid2::new(4, 8);
/// g[(1, 2)] = 3.5;
/// assert_eq!(g[(1, 2)], 3.5);
/// assert_eq!(g.nx(), 4);
/// assert_eq!(g.ny(), 8);
/// assert_eq!(g.sum(), 3.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Grid2 {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Grid2 {
    /// Creates an `nx`-by-`ny` grid filled with zeros.
    pub fn new(nx: usize, ny: usize) -> Self {
        Grid2 {
            nx,
            ny,
            data: vec![0.0; nx * ny],
        }
    }

    /// Creates a grid from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nx * ny`.
    pub fn from_vec(nx: usize, ny: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nx * ny, "grid data length must equal nx * ny");
        Grid2 { nx, ny, data }
    }

    /// Creates a grid by evaluating `f(ix, iy)` at every sample.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nx * ny);
        for ix in 0..nx {
            for iy in 0..ny {
                data.push(f(ix, iy));
            }
        }
        Grid2 { nx, ny, data }
    }

    /// Number of samples along x (rows).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of samples along y (columns).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the grid holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `(nx, ny)` dimension pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Borrows the raw row-major sample buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the raw row-major sample buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the grid, returning the raw sample buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `ix` (all `iy` samples at that x index).
    ///
    /// # Panics
    ///
    /// Panics if `ix >= nx`.
    #[inline]
    pub fn row(&self, ix: usize) -> &[f64] {
        &self.data[ix * self.ny..(ix + 1) * self.ny]
    }

    /// Mutably borrows row `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix >= nx`.
    #[inline]
    pub fn row_mut(&mut self, ix: usize) -> &mut [f64] {
        &mut self.data[ix * self.ny..(ix + 1) * self.ny]
    }

    /// Sets every sample to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Fills every sample with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// The sum of all samples.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// The maximum sample, or 0.0 for an empty grid.
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(if self.data.is_empty() {
                0.0
            } else {
                f64::NEG_INFINITY
            })
    }

    /// The minimum sample, or 0.0 for an empty grid.
    pub fn min(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_assign_grid(&mut self, other: &Grid2) {
        assert_eq!(self.dims(), other.dims(), "grid dimensions must match");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// Scales every sample by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Subtracts the mean so samples sum to zero (the `∫ρ = 0` condition of
    /// the electrostatic system).
    pub fn remove_mean(&mut self) {
        if self.data.is_empty() {
            return;
        }
        let mean = self.sum() / self.data.len() as f64;
        for v in &mut self.data {
            *v -= mean;
        }
    }

    /// Maximum absolute difference to another grid of the same dimensions.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &Grid2) -> f64 {
        assert_eq!(self.dims(), other.dims(), "grid dimensions must match");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Grid2 {
    type Output = f64;
    #[inline]
    fn index(&self, (ix, iy): (usize, usize)) -> &f64 {
        debug_assert!(ix < self.nx && iy < self.ny);
        &self.data[ix * self.ny + iy]
    }
}

impl IndexMut<(usize, usize)> for Grid2 {
    #[inline]
    fn index_mut(&mut self, (ix, iy): (usize, usize)) -> &mut f64 {
        debug_assert!(ix < self.nx && iy < self.ny);
        &mut self.data[ix * self.ny + iy]
    }
}

impl fmt::Display for Grid2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Grid2 {}x{}", self.nx, self.ny)?;
        for ix in 0..self.nx.min(8) {
            for iy in 0..self.ny.min(8) {
                write!(f, "{:10.4} ", self[(ix, iy)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major() {
        let mut g = Grid2::new(3, 4);
        g[(2, 1)] = 7.0;
        assert_eq!(g.as_slice()[2 * 4 + 1], 7.0);
        assert_eq!(g.row(2)[1], 7.0);
    }

    #[test]
    fn from_fn_evaluates_each_sample() {
        let g = Grid2::from_fn(2, 3, |ix, iy| (ix * 10 + iy) as f64);
        assert_eq!(g[(0, 0)], 0.0);
        assert_eq!(g[(1, 2)], 12.0);
        assert_eq!(g.len(), 6);
    }

    #[test]
    #[should_panic(expected = "grid data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Grid2::from_vec(2, 2, vec![0.0; 5]);
    }

    #[test]
    fn sum_min_max() {
        let g = Grid2::from_vec(1, 4, vec![1.0, -2.0, 3.0, 0.5]);
        assert_eq!(g.sum(), 2.5);
        assert_eq!(g.max(), 3.0);
        assert_eq!(g.min(), -2.0);
    }

    #[test]
    fn remove_mean_centers_samples() {
        let mut g = Grid2::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        g.remove_mean();
        assert!(g.sum().abs() < 1e-12);
        assert_eq!(g[(0, 0)], -1.5);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Grid2::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Grid2::from_vec(1, 2, vec![0.5, -1.0]);
        a.add_assign_grid(&b);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "grid dimensions")]
    fn add_assign_rejects_mismatched_dims() {
        let mut a = Grid2::new(2, 2);
        let b = Grid2::new(2, 3);
        a.add_assign_grid(&b);
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Grid2::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Grid2::from_vec(1, 3, vec![1.0, 2.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn empty_grid_behaves() {
        let g = Grid2::new(0, 0);
        assert!(g.is_empty());
        assert_eq!(g.sum(), 0.0);
        assert_eq!(g.min(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let g = Grid2::new(2, 2);
        assert!(!format!("{g}").is_empty());
    }
}
