//! FFT-backed discrete cosine/sine transforms.
//!
//! The electrostatic solver needs three 1-D building blocks, all defined on
//! the half-sample grid `theta_k(n) = pi * k * (2n + 1) / (2N)`:
//!
//! * **analysis** (DCT-II): `C[k] = sum_n x[n] cos(theta_k(n))`
//! * **cosine synthesis**:  `f[n] = sum_k c[k] cos(theta_k(n))`
//! * **sine synthesis** (a.k.a. `idxst`): `f[n] = sum_k c[k] sin(theta_k(n))`
//!
//! All three are computed through a single length-`2N` complex FFT plan.

use crate::{Complex, FftError, FftPlan};
use std::sync::atomic::AtomicUsize;

static PLAN_CACHE_HITS: AtomicUsize = AtomicUsize::new(0);
static PLAN_CACHE_MISSES: AtomicUsize = AtomicUsize::new(0);

/// `(hits, misses)` of the process-wide [`DctPlan::cached`] plan cache
/// since process start. Long-running services expose these counters to
/// show that spectral plans stay warm across requests.
pub fn plan_cache_stats() -> (usize, usize) {
    (
        PLAN_CACHE_HITS.load(std::sync::atomic::Ordering::Relaxed),
        PLAN_CACHE_MISSES.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// A reusable plan for the DCT/DST family of a fixed power-of-two length.
///
/// All transforms are `O(N log N)` and allocation-free after construction.
/// Methods take `&mut self` because the plan owns scratch buffers.
///
/// ```
/// use xplace_fft::DctPlan;
///
/// # fn main() -> Result<(), xplace_fft::FftError> {
/// let mut plan = DctPlan::new(8)?;
/// let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).sin()).collect();
/// let mut coeffs = vec![0.0; 8];
/// plan.analyze(&x, &mut coeffs)?;
/// // Scale to synthesis coefficients and reconstruct.
/// let mut c = coeffs.clone();
/// for (k, v) in c.iter_mut().enumerate() {
///     *v *= 2.0 / 8.0;
///     if k == 0 { *v *= 0.5; }
/// }
/// let mut back = vec![0.0; 8];
/// plan.cosine_synthesis(&c, &mut back)?;
/// for (a, b) in back.iter().zip(&x) {
///     assert!((a - b).abs() < 1e-10);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DctPlan {
    len: usize,
    fft: FftPlan,
    /// e^{-i pi k / (2N)} for k in 0..2N.
    phase_fwd: Vec<Complex>,
    /// e^{+i pi k / (2N)} for k in 0..N.
    phase_inv: Vec<Complex>,
    scratch: Vec<Complex>,
}

impl DctPlan {
    /// Creates a plan of length `len` (must be a nonzero power of two).
    ///
    /// # Errors
    ///
    /// Propagates [`FftError::EmptyLength`] / [`FftError::NotPowerOfTwo`]
    /// from the underlying FFT plan.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len == 0 {
            return Err(FftError::EmptyLength);
        }
        if !crate::is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo(len));
        }
        let fft = FftPlan::new(2 * len)?;
        let phase_fwd = (0..2 * len)
            .map(|k| Complex::from_angle(-std::f64::consts::PI * k as f64 / (2.0 * len as f64)))
            .collect();
        let phase_inv = (0..len)
            .map(|k| Complex::from_angle(std::f64::consts::PI * k as f64 / (2.0 * len as f64)))
            .collect();
        Ok(DctPlan {
            len,
            fft,
            phase_fwd,
            phase_inv,
            scratch: vec![Complex::ZERO; 2 * len],
        })
    }

    /// Returns a plan of length `len`, cloned from a process-wide cache.
    ///
    /// Plan construction computes `O(N)` twiddle/phase tables; callers that
    /// repeatedly build solvers for the same grid size (e.g. batch runs over
    /// many designs) share that work through this cache. The returned plan
    /// owns private scratch, so cached clones never contend at transform
    /// time.
    ///
    /// # Errors
    ///
    /// Same as [`DctPlan::new`]; invalid lengths are never cached.
    pub fn cached(len: usize) -> Result<Self, FftError> {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<usize, DctPlan>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(plan) = map.get(&len) {
            PLAN_CACHE_HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(plan.clone());
        }
        let plan = DctPlan::new(len)?;
        PLAN_CACHE_MISSES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        map.insert(len, plan.clone());
        Ok(plan)
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, input: &[f64], output: &[f64]) -> Result<(), FftError> {
        if input.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: input.len(),
            });
        }
        if output.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: output.len(),
            });
        }
        Ok(())
    }

    /// Unnormalized DCT-II analysis:
    /// `output[k] = sum_n input[n] * cos(pi k (2n+1) / (2N))`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if either slice length differs
    /// from the plan length.
    pub fn analyze(&mut self, input: &[f64], output: &mut [f64]) -> Result<(), FftError> {
        self.check(input, output)?;
        let n = self.len;
        // Even extension: y[n] = x[n], y[2N-1-n] = x[n].
        for (i, &x) in input.iter().enumerate() {
            self.scratch[i] = Complex::new(x, 0.0);
            self.scratch[2 * n - 1 - i] = Complex::new(x, 0.0);
        }
        self.fft.forward(&mut self.scratch)?;
        // C[k] = Re(Y[k] * e^{-i pi k / 2N}) / 2
        for k in 0..n {
            output[k] = 0.5 * (self.scratch[k] * self.phase_fwd[k]).re;
        }
        Ok(())
    }

    /// Cosine synthesis:
    /// `output[n] = sum_{k=0}^{N-1} coeffs[k] * cos(pi k (2n+1) / (2N))`.
    ///
    /// Note the `k = 0` term enters with full weight `coeffs[0]`; any DCT
    /// normalization convention is the caller's responsibility (see the
    /// type-level example).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on slice-length mismatch.
    pub fn cosine_synthesis(&mut self, coeffs: &[f64], output: &mut [f64]) -> Result<(), FftError> {
        self.check(coeffs, output)?;
        let n = self.len;
        // Build the Hermitian length-2N spectrum Z with Z[k] = c[k] e^{i pi k/2N}.
        self.scratch[0] = Complex::new(coeffs[0], 0.0);
        self.scratch[n] = Complex::ZERO;
        for k in 1..n {
            let z = self.phase_inv[k].scale(coeffs[k]);
            self.scratch[k] = z;
            self.scratch[2 * n - k] = z.conj();
        }
        self.fft.inverse_unscaled(&mut self.scratch)?;
        // z_unscaled[n] = c[0] + 2 sum_{k>=1} c[k] cos(theta) ; recover the sum.
        let c0 = coeffs[0];
        for i in 0..n {
            output[i] = 0.5 * (self.scratch[i].re + c0);
        }
        Ok(())
    }

    /// Sine synthesis (the `idxst` transform of ePlace/DREAMPlace):
    /// `output[n] = sum_{k=0}^{N-1} coeffs[k] * sin(pi k (2n+1) / (2N))`.
    ///
    /// The `k = 0` coefficient is irrelevant (its basis function is zero).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on slice-length mismatch.
    pub fn sine_synthesis(&mut self, coeffs: &[f64], output: &mut [f64]) -> Result<(), FftError> {
        self.check(coeffs, output)?;
        let n = self.len;
        // Identity: sum_k c[k] sin(pi k (2n+1)/(2N))
        //         = (-1)^n * sum_m c'[m] cos(pi m (2n+1)/(2N))
        // with c'[0] = 0, c'[m] = c[N-m].
        // Build the Hermitian spectrum for c' directly.
        self.scratch[0] = Complex::ZERO;
        self.scratch[n] = Complex::ZERO;
        for m in 1..n {
            let z = self.phase_inv[m].scale(coeffs[n - m]);
            self.scratch[m] = z;
            self.scratch[2 * n - m] = z.conj();
        }
        self.fft.inverse_unscaled(&mut self.scratch)?;
        for i in 0..n {
            let cos_sum = 0.5 * self.scratch[i].re;
            output[i] = if i % 2 == 0 { cos_sum } else { -cos_sum };
        }
        Ok(())
    }
}

/// Reference `O(N^2)` implementations used to validate the FFT-backed path.
#[cfg(test)]
pub(crate) mod naive {
    /// Unnormalized DCT-II.
    pub fn analyze(input: &[f64]) -> Vec<f64> {
        let n = input.len();
        (0..n)
            .map(|k| {
                input
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        x * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64
                            / (2.0 * n as f64))
                            .cos()
                    })
                    .sum()
            })
            .collect()
    }

    /// Plain cosine synthesis.
    pub fn cosine_synthesis(coeffs: &[f64]) -> Vec<f64> {
        let n = coeffs.len();
        (0..n)
            .map(|i| {
                coeffs
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| {
                        c * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64
                            / (2.0 * n as f64))
                            .cos()
                    })
                    .sum()
            })
            .collect()
    }

    /// Plain sine synthesis.
    pub fn sine_synthesis(coeffs: &[f64]) -> Vec<f64> {
        let n = coeffs.len();
        (0..n)
            .map(|i| {
                coeffs
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| {
                        c * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64
                            / (2.0 * n as f64))
                            .sin()
                    })
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.7).sin() + 0.3 * (i as f64 * 2.1).cos())
            .collect()
    }

    #[test]
    fn rejects_invalid_lengths() {
        assert!(matches!(DctPlan::new(0), Err(FftError::EmptyLength)));
        assert!(matches!(DctPlan::new(10), Err(FftError::NotPowerOfTwo(10))));
    }

    #[test]
    fn plan_cache_stats_count_hits_and_misses() {
        // Length 2048 is used by no other test, so this test contributes
        // exactly one miss then one hit; concurrent tests only add to the
        // global counters, never subtract.
        let (h0, m0) = plan_cache_stats();
        DctPlan::cached(2048).unwrap();
        let (_, m1) = plan_cache_stats();
        assert!(m1 >= m0 + 1, "first cached(2048) must be a miss");
        DctPlan::cached(2048).unwrap();
        let (h2, _) = plan_cache_stats();
        assert!(h2 >= h0 + 1, "second cached(2048) must be a hit");
        // Invalid lengths touch neither counter's cache entry.
        assert!(DctPlan::cached(12).is_err());
    }

    #[test]
    fn cached_plan_matches_fresh_plan_bitwise() {
        let x = sample_signal(64);
        let mut fresh = DctPlan::new(64).unwrap();
        let mut cached = DctPlan::cached(64).unwrap();
        let mut again = DctPlan::cached(64).unwrap();
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        let mut c = vec![0.0; 64];
        fresh.analyze(&x, &mut a).unwrap();
        cached.analyze(&x, &mut b).unwrap();
        again.analyze(&x, &mut c).unwrap();
        for ((p, q), r) in a.iter().zip(&b).zip(&c) {
            assert_eq!(p.to_bits(), q.to_bits());
            assert_eq!(p.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn cached_rejects_invalid_lengths() {
        assert!(matches!(DctPlan::cached(0), Err(FftError::EmptyLength)));
        assert!(matches!(
            DctPlan::cached(12),
            Err(FftError::NotPowerOfTwo(12))
        ));
    }

    #[test]
    fn analyze_matches_naive() {
        for &n in &[2usize, 4, 8, 32, 128] {
            let mut plan = DctPlan::new(n).unwrap();
            let x = sample_signal(n);
            let mut fast = vec![0.0; n];
            plan.analyze(&x, &mut fast).unwrap();
            let slow = naive::analyze(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cosine_synthesis_matches_naive() {
        for &n in &[2usize, 8, 64] {
            let mut plan = DctPlan::new(n).unwrap();
            let c = sample_signal(n);
            let mut fast = vec![0.0; n];
            plan.cosine_synthesis(&c, &mut fast).unwrap();
            let slow = naive::cosine_synthesis(&c);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sine_synthesis_matches_naive() {
        for &n in &[2usize, 8, 64, 256] {
            let mut plan = DctPlan::new(n).unwrap();
            let c = sample_signal(n);
            let mut fast = vec![0.0; n];
            plan.sine_synthesis(&c, &mut fast).unwrap();
            let slow = naive::sine_synthesis(&c);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn analysis_then_scaled_synthesis_round_trips() {
        let n = 64;
        let mut plan = DctPlan::new(n).unwrap();
        let x = sample_signal(n);
        let mut c = vec![0.0; n];
        plan.analyze(&x, &mut c).unwrap();
        for (k, v) in c.iter_mut().enumerate() {
            *v *= 2.0 / n as f64;
            if k == 0 {
                *v *= 0.5;
            }
        }
        let mut back = vec![0.0; n];
        plan.cosine_synthesis(&c, &mut back).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn pure_cosine_mode_concentrates_in_one_coefficient() {
        let n = 32;
        let mut plan = DctPlan::new(n).unwrap();
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (std::f64::consts::PI * k0 as f64 * (2 * i + 1) as f64 / (2.0 * n as f64)).cos()
            })
            .collect();
        let mut c = vec![0.0; n];
        plan.analyze(&x, &mut c).unwrap();
        for (k, &v) in c.iter().enumerate() {
            if k == k0 {
                assert!(
                    (v - n as f64 / 2.0).abs() < 1e-9,
                    "peak coefficient wrong: {v}"
                );
            } else {
                assert!(v.abs() < 1e-9, "leakage at k={k}: {v}");
            }
        }
    }

    #[test]
    fn sine_synthesis_ignores_k0() {
        let n = 16;
        let mut plan = DctPlan::new(n).unwrap();
        let mut c = vec![0.0; n];
        c[0] = 123.0;
        let mut out = vec![0.0; n];
        plan.sine_synthesis(&c, &mut out).unwrap();
        for v in &out {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn mismatched_lengths_error() {
        let mut plan = DctPlan::new(8).unwrap();
        let x = vec![0.0; 8];
        let mut out = vec![0.0; 4];
        assert!(matches!(
            plan.analyze(&x, &mut out),
            Err(FftError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn linearity_of_analysis() {
        let n = 32;
        let mut plan = DctPlan::new(n).unwrap();
        let x = sample_signal(n);
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + 3.0 * b).collect();
        let (mut cx, mut cy, mut cs) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        plan.analyze(&x, &mut cx).unwrap();
        plan.analyze(&y, &mut cy).unwrap();
        plan.analyze(&sum, &mut cs).unwrap();
        for k in 0..n {
            assert!((cs[k] - (2.0 * cx[k] + 3.0 * cy[k])).abs() < 1e-9);
        }
    }
}
