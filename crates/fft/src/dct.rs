//! FFT-backed discrete cosine/sine transforms.
//!
//! The electrostatic solver needs three 1-D building blocks, all defined on
//! the half-sample grid `theta_k(n) = pi * k * (2n + 1) / (2N)`:
//!
//! * **analysis** (DCT-II): `C[k] = sum_n x[n] cos(theta_k(n))`
//! * **cosine synthesis**:  `f[n] = sum_k c[k] cos(theta_k(n))`
//! * **sine synthesis** (a.k.a. `idxst`): `f[n] = sum_k c[k] sin(theta_k(n))`
//!
//! All three run through a single length-`N` complex FFT by way of the
//! packed real transform [`RealFftPlan`]: the even extension of the input
//! (analysis) and the Hermitian coefficient spectrum (synthesis) are real /
//! conjugate-symmetric, so only the non-redundant half of the length-`2N`
//! spectrum is ever computed or stored. See `DESIGN.md` ("Real-FFT spectral
//! engine") for the derivation; [`reference::ComplexDct`] preserves the
//! previous length-`2N` complex-FFT path for property tests and benchmarks.

use crate::{Complex, FftError, RealFftPlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A cache of [`DctPlan`]s keyed by length, with tear-free hit/miss stats.
///
/// Plan construction computes `O(N)` twiddle/phase tables; callers that
/// repeatedly build solvers for the same grid size (batch runs over many
/// designs, a serving daemon) share that work through a cache. Lookups
/// clone the cached plan, so cached clones never contend at transform time.
///
/// Both counters live in one `AtomicU64` (hits in the high 32 bits, misses
/// in the low 32), so a [`PlanCache::stats`] snapshot is always a
/// consistent pair — a concurrent lookup can never be observed in one
/// counter but not the other. Tests that assert exact deltas should use a
/// private instance instead of the process-wide [`DctPlan::cached`] cache,
/// whose counters are shared by the whole process.
///
/// ```
/// use xplace_fft::PlanCache;
///
/// let cache = PlanCache::new();
/// cache.get(64).unwrap();
/// cache.get(64).unwrap();
/// assert_eq!(cache.stats(), (1, 1)); // one miss, then one hit
/// ```
///
/// The cache holds at most `capacity` plans (default
/// [`DEFAULT_PLAN_CACHE_CAPACITY`]); inserting beyond the cap evicts the
/// least-recently-used length. Recency is a logical access counter bumped
/// under the cache lock, so eviction order is a deterministic function of
/// the access sequence.
#[derive(Debug)]
pub struct PlanCache {
    map: Mutex<PlanEntries>,
    capacity: usize,
    /// Packed `(hits << 32) | misses`; saturating per half.
    stats: AtomicU64,
}

/// Default [`PlanCache`] capacity, in distinct plan lengths.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 32;

#[derive(Debug, Default)]
struct PlanEntries {
    map: HashMap<usize, (DctPlan, u64)>,
    /// Logical LRU clock (see [`PlanCache`] docs).
    tick: u64,
    evictions: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` plan lengths (a
    /// cap of 0 is clamped to 1 so the most recent plan stays reusable).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            map: Mutex::new(PlanEntries::default()),
            capacity: capacity.max(1),
            stats: AtomicU64::new(0),
        }
    }

    /// The maximum number of plan lengths the cache retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans evicted to stay within capacity.
    pub fn evictions(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).evictions
    }

    /// `(hits, misses)` since construction, read as one consistent pair.
    ///
    /// Each counter saturates at `u32::MAX` instead of wrapping into its
    /// neighbor's half.
    pub fn stats(&self) -> (usize, usize) {
        let packed = self.stats.load(Ordering::Relaxed);
        (
            (packed >> 32) as usize,
            (packed & u64::from(u32::MAX)) as usize,
        )
    }

    fn bump(&self, hit: bool) {
        let _ = self
            .stats
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |packed| {
                let hits = packed >> 32;
                let misses = packed & u64::from(u32::MAX);
                let (hits, misses) = if hit {
                    ((hits + 1).min(u64::from(u32::MAX)), misses)
                } else {
                    (hits, (misses + 1).min(u64::from(u32::MAX)))
                };
                Some(hits << 32 | misses)
            });
    }

    /// Returns a plan of length `len`, cloned from the cache (loading it on
    /// first use). The returned plan owns private scratch.
    ///
    /// # Errors
    ///
    /// Same as [`DctPlan::new`]; invalid lengths are never cached and touch
    /// neither counter.
    pub fn get(&self, len: usize) -> Result<DctPlan, FftError> {
        let mut entries = self.map.lock().unwrap_or_else(|e| e.into_inner());
        entries.tick += 1;
        let now = entries.tick;
        if let Some((plan, used)) = entries.map.get_mut(&len) {
            *used = now;
            let plan = plan.clone();
            self.bump(true);
            return Ok(plan);
        }
        let plan = DctPlan::new(len)?;
        self.bump(false);
        if entries.map.len() >= self.capacity {
            // Ticks are unique under the lock, so the LRU victim is
            // unique and eviction order is deterministic.
            if let Some(victim) = entries
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
            {
                entries.map.remove(&victim);
                entries.evictions += 1;
            }
        }
        entries.map.insert(len, (plan.clone(), now));
        Ok(plan)
    }

    /// Number of cached plan lengths.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn global_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(PlanCache::new)
}

/// `(hits, misses)` of the process-wide [`DctPlan::cached`] plan cache
/// since process start, read as one consistent snapshot. Long-running
/// services expose these counters to show that spectral plans stay warm
/// across requests.
pub fn plan_cache_stats() -> (usize, usize) {
    global_cache().stats()
}

/// Evictions from the process-wide [`DctPlan::cached`] plan cache since
/// process start. Nonzero means more distinct grid sizes were in play
/// than [`DEFAULT_PLAN_CACHE_CAPACITY`] — plans are being rebuilt.
pub fn plan_cache_evictions() -> usize {
    global_cache().evictions()
}

/// A reusable plan for the DCT/DST family of a fixed power-of-two length.
///
/// All transforms are `O(N log N)` and allocation-free after construction,
/// computed through one length-`N` complex FFT via the packed real path of
/// [`RealFftPlan`]. Methods take `&mut self` because the plan owns scratch
/// buffers.
///
/// ```
/// use xplace_fft::DctPlan;
///
/// # fn main() -> Result<(), xplace_fft::FftError> {
/// let mut plan = DctPlan::new(8)?;
/// let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).sin()).collect();
/// let mut coeffs = vec![0.0; 8];
/// plan.analyze(&x, &mut coeffs)?;
/// // Scale to synthesis coefficients and reconstruct.
/// let mut c = coeffs.clone();
/// for (k, v) in c.iter_mut().enumerate() {
///     *v *= 2.0 / 8.0;
///     if k == 0 { *v *= 0.5; }
/// }
/// let mut back = vec![0.0; 8];
/// plan.cosine_synthesis(&c, &mut back)?;
/// for (a, b) in back.iter().zip(&x) {
///     assert!((a - b).abs() < 1e-10);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DctPlan {
    len: usize,
    rfft: RealFftPlan,
    /// e^{-i pi k / (2N)} for k in 0..N.
    phase_fwd: Vec<Complex>,
    /// e^{+i pi k / (2N)} for k in 0..N.
    phase_inv: Vec<Complex>,
    /// Half-spectrum scratch, N + 1 slots.
    spec: Vec<Complex>,
    /// Real even-extension scratch, 2N samples.
    ext: Vec<f64>,
}

impl DctPlan {
    /// Creates a plan of length `len` (must be a nonzero power of two).
    ///
    /// # Errors
    ///
    /// Propagates [`FftError::EmptyLength`] / [`FftError::NotPowerOfTwo`]
    /// from the underlying FFT plan.
    pub fn new(len: usize) -> Result<Self, FftError> {
        if len == 0 {
            return Err(FftError::EmptyLength);
        }
        if !crate::is_power_of_two(len) {
            return Err(FftError::NotPowerOfTwo(len));
        }
        let rfft = RealFftPlan::new(2 * len)?;
        let phase_fwd = (0..len)
            .map(|k| Complex::from_angle(-std::f64::consts::PI * k as f64 / (2.0 * len as f64)))
            .collect();
        let phase_inv = (0..len)
            .map(|k| Complex::from_angle(std::f64::consts::PI * k as f64 / (2.0 * len as f64)))
            .collect();
        Ok(DctPlan {
            len,
            rfft,
            phase_fwd,
            phase_inv,
            spec: vec![Complex::ZERO; len + 1],
            ext: vec![0.0; 2 * len],
        })
    }

    /// Returns a plan of length `len`, cloned from a process-wide cache —
    /// a convenience wrapper over a global [`PlanCache`].
    ///
    /// The returned plan owns private scratch, so cached clones never
    /// contend at transform time. Tests asserting exact hit/miss deltas
    /// should construct their own [`PlanCache`]: the global counters are
    /// shared by every caller in the process.
    ///
    /// # Errors
    ///
    /// Same as [`DctPlan::new`]; invalid lengths are never cached.
    pub fn cached(len: usize) -> Result<Self, FftError> {
        global_cache().get(len)
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the plan length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, input: &[f64], output: &[f64]) -> Result<(), FftError> {
        if input.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: input.len(),
            });
        }
        if output.len() != self.len {
            return Err(FftError::LengthMismatch {
                expected: self.len,
                actual: output.len(),
            });
        }
        Ok(())
    }

    /// Unnormalized DCT-II analysis:
    /// `output[k] = sum_n input[n] * cos(pi k (2n+1) / (2N))`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if either slice length differs
    /// from the plan length.
    pub fn analyze(&mut self, input: &[f64], output: &mut [f64]) -> Result<(), FftError> {
        self.check(input, output)?;
        let n = self.len;
        // Even extension: y[n] = x[n], y[2N-1-n] = x[n]. The extension is
        // real, so the forward transform runs through the packed real path.
        let (head, tail) = self.ext.split_at_mut(n);
        head.copy_from_slice(input);
        for (t, &x) in tail.iter_mut().rev().zip(input) {
            *t = x;
        }
        self.rfft.forward(&self.ext, &mut self.spec)?;
        // C[k] = Re(Y[k] * e^{-i pi k / 2N}) / 2; only the half spectrum
        // k < N is needed, and only the real part of the product.
        for ((out, y), p) in output.iter_mut().zip(&self.spec).zip(&self.phase_fwd) {
            *out = 0.5 * (y.re * p.re - y.im * p.im);
        }
        Ok(())
    }

    /// Cosine synthesis:
    /// `output[n] = sum_{k=0}^{N-1} coeffs[k] * cos(pi k (2n+1) / (2N))`.
    ///
    /// Note the `k = 0` term enters with full weight `coeffs[0]`; any DCT
    /// normalization convention is the caller's responsibility (see the
    /// type-level example).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on slice-length mismatch.
    pub fn cosine_synthesis(&mut self, coeffs: &[f64], output: &mut [f64]) -> Result<(), FftError> {
        self.check(coeffs, output)?;
        let n = self.len;
        // Hermitian half spectrum Z[k] = c[k] e^{i pi k/2N} for k < N; the
        // conjugate half is implied and never materialized.
        self.spec[0] = Complex::new(coeffs[0], 0.0);
        self.spec[n] = Complex::ZERO;
        for ((z, p), &c) in self.spec[1..n]
            .iter_mut()
            .zip(&self.phase_inv[1..])
            .zip(&coeffs[1..])
        {
            *z = p.scale(c);
        }
        self.rfft.inverse_unscaled(&self.spec, &mut self.ext)?;
        // ext[n] = c[0] + 2 sum_{k>=1} c[k] cos(theta) ; recover the sum.
        let c0 = coeffs[0];
        for (out, &e) in output.iter_mut().zip(self.ext.iter()) {
            *out = 0.5 * (e + c0);
        }
        Ok(())
    }

    /// Sine synthesis (the `idxst` transform of ePlace/DREAMPlace):
    /// `output[n] = sum_{k=0}^{N-1} coeffs[k] * sin(pi k (2n+1) / (2N))`.
    ///
    /// The `k = 0` coefficient is irrelevant (its basis function is zero).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on slice-length mismatch.
    pub fn sine_synthesis(&mut self, coeffs: &[f64], output: &mut [f64]) -> Result<(), FftError> {
        self.check(coeffs, output)?;
        let n = self.len;
        // Identity: sum_k c[k] sin(pi k (2n+1)/(2N))
        //         = (-1)^n * sum_m c'[m] cos(pi m (2n+1)/(2N))
        // with c'[0] = 0, c'[m] = c[N-m].
        // Build the Hermitian half spectrum for c' directly.
        self.spec[0] = Complex::ZERO;
        self.spec[n] = Complex::ZERO;
        for (m, z) in self.spec[1..n].iter_mut().enumerate() {
            *z = self.phase_inv[m + 1].scale(coeffs[n - 1 - m]);
        }
        self.rfft.inverse_unscaled(&self.spec, &mut self.ext)?;
        for (pair, out) in self.ext.chunks_exact(2).zip(output.chunks_mut(2)) {
            out[0] = 0.5 * pair[0];
            if let Some(o) = out.get_mut(1) {
                *o = -0.5 * pair[1];
            }
        }
        Ok(())
    }
}

/// The pre-real-FFT transform path: every DCT/DST through one length-`2N`
/// **complex** FFT. Kept as a second independent implementation for
/// property tests (real vs complex path) and speedup benchmarks; not used
/// by the solver.
#[doc(hidden)]
pub mod reference {
    use crate::{Complex, FftError, FftPlan};

    /// [`super::DctPlan`]'s previous implementation: DCT-II analysis and
    /// cosine/sine synthesis through a full length-`2N` complex FFT.
    #[derive(Debug, Clone)]
    pub struct ComplexDct {
        len: usize,
        fft: FftPlan,
        /// e^{-i pi k / (2N)} for k in 0..2N.
        phase_fwd: Vec<Complex>,
        /// e^{+i pi k / (2N)} for k in 0..N.
        phase_inv: Vec<Complex>,
        scratch: Vec<Complex>,
    }

    impl ComplexDct {
        /// Creates a plan of length `len` (must be a nonzero power of two).
        pub fn new(len: usize) -> Result<Self, FftError> {
            if len == 0 {
                return Err(FftError::EmptyLength);
            }
            if !crate::is_power_of_two(len) {
                return Err(FftError::NotPowerOfTwo(len));
            }
            let fft = FftPlan::new(2 * len)?;
            let phase_fwd = (0..2 * len)
                .map(|k| Complex::from_angle(-std::f64::consts::PI * k as f64 / (2.0 * len as f64)))
                .collect();
            let phase_inv = (0..len)
                .map(|k| Complex::from_angle(std::f64::consts::PI * k as f64 / (2.0 * len as f64)))
                .collect();
            Ok(ComplexDct {
                len,
                fft,
                phase_fwd,
                phase_inv,
                scratch: vec![Complex::ZERO; 2 * len],
            })
        }

        /// Unnormalized DCT-II analysis (complex-FFT path).
        pub fn analyze(&mut self, input: &[f64], output: &mut [f64]) -> Result<(), FftError> {
            let n = self.len;
            for (i, &x) in input.iter().enumerate() {
                self.scratch[i] = Complex::new(x, 0.0);
                self.scratch[2 * n - 1 - i] = Complex::new(x, 0.0);
            }
            self.fft.forward(&mut self.scratch)?;
            for k in 0..n {
                output[k] = 0.5 * (self.scratch[k] * self.phase_fwd[k]).re;
            }
            Ok(())
        }

        /// Cosine synthesis (complex-FFT path).
        pub fn cosine_synthesis(
            &mut self,
            coeffs: &[f64],
            output: &mut [f64],
        ) -> Result<(), FftError> {
            let n = self.len;
            self.scratch[0] = Complex::new(coeffs[0], 0.0);
            self.scratch[n] = Complex::ZERO;
            for k in 1..n {
                let z = self.phase_inv[k].scale(coeffs[k]);
                self.scratch[k] = z;
                self.scratch[2 * n - k] = z.conj();
            }
            self.fft.inverse_unscaled(&mut self.scratch)?;
            let c0 = coeffs[0];
            for i in 0..n {
                output[i] = 0.5 * (self.scratch[i].re + c0);
            }
            Ok(())
        }

        /// Sine synthesis (complex-FFT path).
        pub fn sine_synthesis(
            &mut self,
            coeffs: &[f64],
            output: &mut [f64],
        ) -> Result<(), FftError> {
            let n = self.len;
            self.scratch[0] = Complex::ZERO;
            self.scratch[n] = Complex::ZERO;
            for m in 1..n {
                let z = self.phase_inv[m].scale(coeffs[n - m]);
                self.scratch[m] = z;
                self.scratch[2 * n - m] = z.conj();
            }
            self.fft.inverse_unscaled(&mut self.scratch)?;
            for i in 0..n {
                let cos_sum = 0.5 * self.scratch[i].re;
                output[i] = if i % 2 == 0 { cos_sum } else { -cos_sum };
            }
            Ok(())
        }
    }
}

/// Reference `O(N^2)` implementations used to validate the FFT-backed
/// paths (unit, property and solver tests).
#[doc(hidden)]
pub mod naive {
    /// Unnormalized DCT-II.
    pub fn analyze(input: &[f64]) -> Vec<f64> {
        let n = input.len();
        (0..n)
            .map(|k| {
                input
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        x * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64
                            / (2.0 * n as f64))
                            .cos()
                    })
                    .sum()
            })
            .collect()
    }

    /// Plain cosine synthesis.
    pub fn cosine_synthesis(coeffs: &[f64]) -> Vec<f64> {
        let n = coeffs.len();
        (0..n)
            .map(|i| {
                coeffs
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| {
                        c * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64
                            / (2.0 * n as f64))
                            .cos()
                    })
                    .sum()
            })
            .collect()
    }

    /// Plain sine synthesis.
    pub fn sine_synthesis(coeffs: &[f64]) -> Vec<f64> {
        let n = coeffs.len();
        (0..n)
            .map(|i| {
                coeffs
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| {
                        c * (std::f64::consts::PI * k as f64 * (2 * i + 1) as f64
                            / (2.0 * n as f64))
                            .sin()
                    })
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.7).sin() + 0.3 * (i as f64 * 2.1).cos())
            .collect()
    }

    #[test]
    fn rejects_invalid_lengths() {
        assert!(matches!(DctPlan::new(0), Err(FftError::EmptyLength)));
        assert!(matches!(DctPlan::new(10), Err(FftError::NotPowerOfTwo(10))));
    }

    #[test]
    fn private_plan_cache_counts_exact_hits_and_misses() {
        // A private cache has delta-scoped counters: no other test can
        // touch them, so the assertions are exact and order-independent.
        let cache = PlanCache::new();
        assert_eq!(cache.stats(), (0, 0));
        assert!(cache.is_empty());
        cache.get(64).unwrap();
        assert_eq!(cache.stats(), (0, 1), "first get(64) must be a miss");
        cache.get(64).unwrap();
        assert_eq!(cache.stats(), (1, 1), "second get(64) must be a hit");
        cache.get(32).unwrap();
        cache.get(32).unwrap();
        cache.get(32).unwrap();
        assert_eq!(cache.stats(), (3, 2));
        assert_eq!(cache.len(), 2);
        // Invalid lengths touch neither counter.
        assert!(cache.get(12).is_err());
        assert!(cache.get(0).is_err());
        assert_eq!(cache.stats(), (3, 2));
    }

    #[test]
    fn plan_cache_capacity_evicts_least_recently_used() {
        let cache = PlanCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache.get(8).unwrap();
        cache.get(16).unwrap();
        // Touch 8 so 16 is the LRU victim when 32 arrives.
        cache.get(8).unwrap();
        cache.get(32).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // 8 survived (hit); 16 was evicted (miss again, evicting 8,
        // which is now the LRU after 32's insert touched the clock).
        cache.get(8).unwrap();
        let (hits, misses) = cache.stats();
        cache.get(16).unwrap();
        assert_eq!(cache.stats(), (hits, misses + 1));
        assert_eq!(cache.evictions(), 2);
        // Zero capacity clamps to 1.
        assert_eq!(PlanCache::with_capacity(0).capacity(), 1);
    }

    #[test]
    fn plan_cache_stats_snapshot_is_monotone_and_consistent() {
        // The process-wide counters are shared across the test binary, so
        // only monotone (>=) deltas can be asserted here; exact deltas live
        // in `private_plan_cache_counts_exact_hits_and_misses`.
        let (h0, m0) = plan_cache_stats();
        DctPlan::cached(2048).unwrap();
        DctPlan::cached(2048).unwrap();
        let (h1, m1) = plan_cache_stats();
        assert!(h1 + m1 >= h0 + m0 + 2, "two lookups must be counted");
        assert!(h1 >= h0 + 1, "the second cached(2048) must be a hit");
        assert!(m1 >= m0, "misses never decrease");
        assert!(DctPlan::cached(12).is_err());
    }

    #[test]
    fn plan_cache_stats_saturate_instead_of_carrying() {
        // Force the miss half to the saturation point and verify further
        // misses neither wrap nor spill a carry into the hit half.
        let cache = PlanCache::new();
        cache
            .stats
            .store(u64::from(u32::MAX) - 1, Ordering::Relaxed);
        cache.get(16).unwrap(); // miss -> u32::MAX
        cache.get(8).unwrap(); // miss -> saturates
        assert_eq!(cache.stats(), (0, u32::MAX as usize));
        cache.get(16).unwrap(); // hit half still counts normally
        assert_eq!(cache.stats(), (1, u32::MAX as usize));
    }

    #[test]
    fn cached_plan_matches_fresh_plan_bitwise() {
        let x = sample_signal(64);
        let mut fresh = DctPlan::new(64).unwrap();
        let mut cached = DctPlan::cached(64).unwrap();
        let mut again = DctPlan::cached(64).unwrap();
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        let mut c = vec![0.0; 64];
        fresh.analyze(&x, &mut a).unwrap();
        cached.analyze(&x, &mut b).unwrap();
        again.analyze(&x, &mut c).unwrap();
        for ((p, q), r) in a.iter().zip(&b).zip(&c) {
            assert_eq!(p.to_bits(), q.to_bits());
            assert_eq!(p.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn cached_rejects_invalid_lengths() {
        assert!(matches!(DctPlan::cached(0), Err(FftError::EmptyLength)));
        assert!(matches!(
            DctPlan::cached(12),
            Err(FftError::NotPowerOfTwo(12))
        ));
    }

    #[test]
    fn analyze_matches_naive() {
        for &n in &[1usize, 2, 4, 8, 32, 128] {
            let mut plan = DctPlan::new(n).unwrap();
            let x = sample_signal(n);
            let mut fast = vec![0.0; n];
            plan.analyze(&x, &mut fast).unwrap();
            let slow = naive::analyze(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cosine_synthesis_matches_naive() {
        for &n in &[1usize, 2, 8, 64] {
            let mut plan = DctPlan::new(n).unwrap();
            let c = sample_signal(n);
            let mut fast = vec![0.0; n];
            plan.cosine_synthesis(&c, &mut fast).unwrap();
            let slow = naive::cosine_synthesis(&c);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sine_synthesis_matches_naive() {
        for &n in &[1usize, 2, 8, 64, 256] {
            let mut plan = DctPlan::new(n).unwrap();
            let c = sample_signal(n);
            let mut fast = vec![0.0; n];
            plan.sine_synthesis(&c, &mut fast).unwrap();
            let slow = naive::sine_synthesis(&c);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn real_path_matches_complex_reference_path() {
        for &n in &[1usize, 2, 4, 16, 128] {
            let mut real = DctPlan::new(n).unwrap();
            let mut complex = reference::ComplexDct::new(n).unwrap();
            let x = sample_signal(n);
            let (mut a, mut b) = (vec![0.0; n], vec![0.0; n]);
            real.analyze(&x, &mut a).unwrap();
            complex.analyze(&x, &mut b).unwrap();
            for (p, q) in a.iter().zip(&b) {
                assert!((p - q).abs() < 1e-9, "analyze n={n}: {p} vs {q}");
            }
            real.cosine_synthesis(&x, &mut a).unwrap();
            complex.cosine_synthesis(&x, &mut b).unwrap();
            for (p, q) in a.iter().zip(&b) {
                assert!((p - q).abs() < 1e-9, "cosine n={n}: {p} vs {q}");
            }
            real.sine_synthesis(&x, &mut a).unwrap();
            complex.sine_synthesis(&x, &mut b).unwrap();
            for (p, q) in a.iter().zip(&b) {
                assert!((p - q).abs() < 1e-9, "sine n={n}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn length_one_plans_are_exact() {
        let mut plan = DctPlan::new(1).unwrap();
        let (mut out, x) = ([0.0], [2.75]);
        plan.analyze(&x, &mut out).unwrap();
        assert_eq!(out, [2.75]); // C[0] = x[0]
        plan.cosine_synthesis(&x, &mut out).unwrap();
        assert_eq!(out, [2.75]); // f[0] = c[0]
        plan.sine_synthesis(&x, &mut out).unwrap();
        assert_eq!(out, [0.0]); // sin(0) basis
    }

    #[test]
    fn analysis_then_scaled_synthesis_round_trips() {
        let n = 64;
        let mut plan = DctPlan::new(n).unwrap();
        let x = sample_signal(n);
        let mut c = vec![0.0; n];
        plan.analyze(&x, &mut c).unwrap();
        for (k, v) in c.iter_mut().enumerate() {
            *v *= 2.0 / n as f64;
            if k == 0 {
                *v *= 0.5;
            }
        }
        let mut back = vec![0.0; n];
        plan.cosine_synthesis(&c, &mut back).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn pure_cosine_mode_concentrates_in_one_coefficient() {
        let n = 32;
        let mut plan = DctPlan::new(n).unwrap();
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (std::f64::consts::PI * k0 as f64 * (2 * i + 1) as f64 / (2.0 * n as f64)).cos()
            })
            .collect();
        let mut c = vec![0.0; n];
        plan.analyze(&x, &mut c).unwrap();
        for (k, &v) in c.iter().enumerate() {
            if k == k0 {
                assert!(
                    (v - n as f64 / 2.0).abs() < 1e-9,
                    "peak coefficient wrong: {v}"
                );
            } else {
                assert!(v.abs() < 1e-9, "leakage at k={k}: {v}");
            }
        }
    }

    #[test]
    fn sine_synthesis_ignores_k0() {
        let n = 16;
        let mut plan = DctPlan::new(n).unwrap();
        let mut c = vec![0.0; n];
        c[0] = 123.0;
        let mut out = vec![0.0; n];
        plan.sine_synthesis(&c, &mut out).unwrap();
        for v in &out {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn mismatched_lengths_error() {
        let mut plan = DctPlan::new(8).unwrap();
        let x = vec![0.0; 8];
        let mut out = vec![0.0; 4];
        assert!(matches!(
            plan.analyze(&x, &mut out),
            Err(FftError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn linearity_of_analysis() {
        let n = 32;
        let mut plan = DctPlan::new(n).unwrap();
        let x = sample_signal(n);
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + 3.0 * b).collect();
        let (mut cx, mut cy, mut cs) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        plan.analyze(&x, &mut cx).unwrap();
        plan.analyze(&y, &mut cy).unwrap();
        plan.analyze(&sum, &mut cs).unwrap();
        for k in 0..n {
            assert!((cs[k] - (2.0 * cx[k] + 3.0 * cy[k])).abs() < 1e-9);
        }
    }
}
