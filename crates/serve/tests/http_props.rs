//! Property-based tests of the HTTP layer: request parsing survives
//! arbitrary fragmentation, header lookups fold case, oversized bodies
//! are rejected deterministically, the chunked encoder round-trips any
//! payload under any chunking, and injected partial writes / dropped
//! connections surface as errors without ever corrupting the prefix
//! that made it onto the wire.

use xplace_fault::{FailingWriter, INJECTED_WRITE_ERROR};
use xplace_serve::http::{
    read_chunked_body, ChunkedWriter, HttpError, Request, RequestParser, DEFAULT_MAX_BODY_BYTES,
};
use xplace_testkit::prop::{from_fn, Config};
use xplace_testkit::rng::Rng;
use xplace_testkit::{prop_assert, prop_assert_eq, props};

/// A random HTTP token (header names, method-ish strings).
fn token(rng: &mut Rng, max_len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
    let len = rng.gen_range(1..=max_len);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// A random printable header value (no CR/LF, no leading/trailing
/// whitespace so the parser's `trim` is identity on it).
fn header_value(rng: &mut Rng) -> String {
    const ALPHABET: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_./+=\"{}[]";
    let len = rng.gen_range(1..=24);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// A random request: method, target, 0..5 headers, 0..200 body bytes.
fn request(rng: &mut Rng) -> Request {
    let methods = ["GET", "POST", "PUT", "DELETE"];
    let n_headers = rng.gen_range(0..5usize);
    let headers = (0..n_headers)
        .map(|_| {
            // `Content-Length` is synthesized by render(); generating it
            // would duplicate the header.
            let mut name = token(rng, 12);
            if name.eq_ignore_ascii_case("content-length") {
                name.push('x');
            }
            (name, header_value(rng))
        })
        .collect();
    let body_len = rng.gen_range(0..200usize);
    let body = (0..body_len).map(|_| rng.gen_range(0..=255u8)).collect();
    Request {
        method: methods[rng.gen_range(0..methods.len())].to_string(),
        target: format!("/{}", token(rng, 16)),
        headers,
        body,
    }
}

/// Splits `wire` into random fragments (possibly empty, possibly the
/// whole buffer).
fn fragments(rng: &mut Rng, wire: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < wire.len() {
        let take = rng.gen_range(0..=wire.len() - pos);
        out.push(wire[pos..pos + take].to_vec());
        pos += take;
    }
    out
}

fn sans_content_length(mut r: Request) -> Request {
    r.headers
        .retain(|(k, _)| !k.eq_ignore_ascii_case("content-length"));
    r
}

props! {
    config = Config::with_cases(96);

    /// render -> parse is the identity (modulo the synthesized
    /// Content-Length header), for any request.
    fn request_round_trips(req in from_fn(request)) {
        let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        let parsed = parser.feed(&req.render()).expect("renders parse");
        let parsed = parsed.expect("a full request completes in one feed");
        prop_assert_eq!(sans_content_length(parsed), req);
    }

    /// The parse result is a pure function of the concatenated input:
    /// any fragmentation — including byte-at-a-time — yields the same
    /// request, and never completes early.
    fn torn_reads_never_change_the_parse(
        req in from_fn(request),
        seed in 0u64..1_000_000,
    ) {
        let wire = req.render();
        let whole = RequestParser::new(DEFAULT_MAX_BODY_BYTES)
            .feed(&wire)
            .expect("parses whole")
            .expect("completes whole");

        // Random fragmentation.
        let mut rng = Rng::seed_from_u64(seed);
        let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        let mut done = None;
        for frag in fragments(&mut rng, &wire) {
            prop_assert!(done.is_none(), "must not complete before the last byte arrives");
            done = parser.feed(&frag).expect("fragments parse");
        }
        prop_assert_eq!(done.expect("completes"), whole.clone());

        // Byte-at-a-time.
        let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        let mut done = None;
        for &b in &wire {
            prop_assert!(done.is_none());
            done = parser.feed(&[b]).expect("bytes parse");
        }
        prop_assert_eq!(done.expect("completes byte-wise"), whole);
    }

    /// Header lookup ignores ASCII case on the name.
    fn header_lookup_folds_case(req in from_fn(request)) {
        let parsed = RequestParser::new(DEFAULT_MAX_BODY_BYTES)
            .feed(&req.render())
            .unwrap()
            .unwrap();
        for (name, _) in &req.headers {
            let upper = name.to_ascii_uppercase();
            let lower = name.to_ascii_lowercase();
            // First-match semantics: both case variants see the same value.
            prop_assert_eq!(parsed.header(&upper), parsed.header(&lower));
            prop_assert!(parsed.header(&upper).is_some());
        }
    }

    /// A declared body over the cap is rejected the moment the head is
    /// parsed, regardless of how the bytes arrive — and sized bodies at
    /// or under the cap are accepted.
    fn oversized_bodies_reject_at_the_declaration(
        limit in 1usize..64,
        excess in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        let declared = limit + excess;
        let head = format!("POST /batch HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let mut rng = Rng::seed_from_u64(seed);
        let mut parser = RequestParser::new(limit);
        let mut rejected = None;
        for frag in fragments(&mut rng, head.as_bytes()) {
            match parser.feed(&frag) {
                Ok(None) => {}
                Ok(Some(_)) => prop_assert!(false, "oversized request must not complete"),
                Err(e) => { rejected = Some(e); break; }
            }
        }
        prop_assert_eq!(
            rejected,
            Some(HttpError::BodyTooLarge { declared, limit })
        );

        // Exactly at the limit is fine.
        let at_limit = Request {
            method: "POST".into(),
            target: "/batch".into(),
            headers: vec![],
            body: vec![b'x'; limit],
        };
        let parsed = RequestParser::new(limit)
            .feed(&at_limit.render())
            .expect("at-limit parses")
            .expect("at-limit completes");
        prop_assert_eq!(parsed.body.len(), limit);
    }

    /// Chunked write -> read is the identity for any payload split into
    /// any chunk sizes.
    fn chunked_encoding_round_trips(
        payload_len in 0usize..2048,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen_range(0..=255u8)).collect();
        let mut wire = Vec::new();
        {
            let mut writer = ChunkedWriter::new(&mut wire);
            for chunk in fragments(&mut rng, &payload) {
                writer.chunk(&chunk).expect("Vec write cannot fail");
            }
            writer.finish().expect("finish flushes");
        }
        let back = read_chunked_body(&mut wire.as_slice()).expect("well-formed stream");
        prop_assert_eq!(back, payload);

        // Truncating the terminator must be detected, never silently
        // returned as a complete body.
        prop_assert!(read_chunked_body(&mut &wire[..wire.len() - 1]).is_err());
    }

    /// A write fault injected after any byte budget surfaces as the
    /// injected error, and whatever reached the wire is an exact prefix
    /// of the clean encoding — the writer never reorders, duplicates, or
    /// invents bytes around a failure.
    fn injected_write_faults_surface_and_preserve_the_prefix(
        payload_len in 1usize..512,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen_range(0..=255u8)).collect();
        let chunks = fragments(&mut rng, &payload);

        // Clean reference encoding of the same chunk sequence.
        let mut clean = Vec::new();
        {
            let mut writer = ChunkedWriter::new(&mut clean);
            for chunk in &chunks {
                writer.chunk(chunk).expect("Vec write cannot fail");
            }
            writer.finish().expect("finish flushes");
        }

        let budget = rng.gen_range(0..clean.len());
        let mut writer = ChunkedWriter::new(FailingWriter::new(Vec::new(), budget));
        let mut error = None;
        for chunk in &chunks {
            if let Err(e) = writer.chunk(chunk) {
                error = Some(e);
                break;
            }
        }
        // A budget that survives every chunk() still cannot cover the
        // 5-byte terminator, so finish() must fail instead.
        let error = match error {
            Some(e) => e,
            None => writer
                .finish()
                .err()
                .expect("a budget under the clean length must fail"),
        };
        prop_assert_eq!(error.to_string(), INJECTED_WRITE_ERROR.to_string());

        // ChunkedWriter has no public way back to the inner writer after
        // a failed chunk (finish would write more), so check the prefix
        // invariant on FailingWriter directly: replay the clean wire.
        let mut failing = FailingWriter::new(Vec::new(), budget);
        let _ = std::io::Write::write_all(&mut failing, &clean);
        let reached_wire = failing.into_inner();
        prop_assert_eq!(reached_wire.as_slice(), &clean[..budget]);
    }

    /// A connection dropped at any byte — not just the last — never
    /// yields a complete body: every strict prefix of a chunked stream
    /// is rejected or reports EOF, byte-at-a-time included.
    fn dropped_connections_never_yield_a_complete_body(
        payload_len in 1usize..256,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen_range(0..=255u8)).collect();
        let mut wire = Vec::new();
        {
            let mut writer = ChunkedWriter::new(&mut wire);
            for chunk in fragments(&mut rng, &payload) {
                writer.chunk(&chunk).expect("Vec write cannot fail");
            }
            writer.finish().expect("finish flushes");
        }
        let cut = rng.gen_range(0..wire.len());
        prop_assert!(
            read_chunked_body(&mut &wire[..cut]).is_err(),
            "a stream cut at byte {} of {} must not parse as complete",
            cut,
            wire.len()
        );
    }
}
