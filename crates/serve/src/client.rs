//! A blocking client for the serving daemon — the piece tests, the soak
//! harness, and the CI parity check drive the wire protocol through.

use crate::http::{read_chunked_body, read_response_head, Request, ResponseHead};
use crate::wire::{assemble, parse_frames, WireBatch};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use xplace_telemetry::Json;

/// The outcome of one `POST /batch` submission.
#[derive(Debug, Clone)]
pub enum Submission {
    /// The batch ran; the stream reassembled into a [`WireBatch`].
    Completed(WireBatch),
    /// The request was rejected before execution.
    Rejected {
        /// HTTP status (400, 413, 429, 503, …).
        status: u16,
        /// The `Retry-After` header, in seconds, when present.
        retry_after: Option<u64>,
        /// The server's plain-text explanation.
        message: String,
    },
}

impl Submission {
    /// Unwraps the completed batch.
    ///
    /// # Panics
    ///
    /// Panics (with the rejection message) if the submission was
    /// rejected — test-suite convenience.
    pub fn expect_completed(self) -> WireBatch {
        match self {
            Submission::Completed(batch) => batch,
            Submission::Rejected {
                status, message, ..
            } => panic!("submission rejected with {status}: {message}"),
        }
    }
}

/// A blocking client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    identity: Option<String>,
    deadline_ns: Option<u64>,
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`). Without an
    /// explicit identity the server keys quotas on the peer IP.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            identity: None,
            deadline_ns: None,
        }
    }

    /// The daemon address this client is bound to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sets the `X-Client` identity quotas and fairness key on.
    pub fn with_identity(mut self, identity: impl Into<String>) -> Self {
        self.identity = Some(identity.into());
        self
    }

    /// Sets the `X-Deadline-Ns` per-request modeled-time deadline every
    /// job of a submitted batch must finish within.
    pub fn with_deadline_ns(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    fn request(&self, method: &str, target: &str, body: &[u8]) -> Request {
        let mut headers = vec![("Host".to_string(), self.addr.clone())];
        if let Some(identity) = &self.identity {
            headers.push(("X-Client".to_string(), identity.clone()));
        }
        if let Some(ns) = self.deadline_ns {
            headers.push(("X-Deadline-Ns".to_string(), ns.to_string()));
        }
        Request {
            method: method.into(),
            target: target.into(),
            headers,
            body: body.to_vec(),
        }
    }

    fn send(&self, request: &Request) -> io::Result<(ResponseHead, TcpStream)> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.write_all(&request.render())?;
        stream.flush()?;
        let head = read_response_head(&mut stream)?;
        Ok((head, stream))
    }

    /// Submits a manifest to `POST /batch` and, on admission, blocks
    /// until the streamed response completes, reassembling it.
    ///
    /// # Errors
    ///
    /// Network failures and protocol violations (a truncated stream, a
    /// malformed frame) are `io::Error`s; *rejections* (4xx/5xx) are the
    /// [`Submission::Rejected`] value, not an error.
    pub fn submit(&self, manifest: &str) -> io::Result<Submission> {
        let request = self.request("POST", "/batch", manifest.as_bytes());
        let (head, mut stream) = self.send(&request)?;
        if head.status != 200 {
            let retry_after = head
                .header("retry-after")
                .and_then(|v| v.trim().parse().ok());
            let message = read_sized_body(&head, &mut stream)?;
            return Ok(Submission::Rejected {
                status: head.status,
                retry_after,
                message,
            });
        }
        if head
            .header("transfer-encoding")
            .map(|v| !v.eq_ignore_ascii_case("chunked"))
            .unwrap_or(true)
        {
            return Err(invalid("200 response is not chunked"));
        }
        let body = read_chunked_body(&mut stream)?;
        let text = String::from_utf8(body).map_err(|_| invalid("stream is not UTF-8"))?;
        let frames = parse_frames(&text).map_err(invalid)?;
        let batch = assemble(&frames).map_err(invalid)?;
        Ok(Submission::Completed(batch))
    }

    /// Submits with bounded retry on 429/503 (honouring `Retry-After`,
    /// capped at `max_attempts` tries) — the polite-client loop the soak
    /// harness uses. Hard rejections (400/413/404) return immediately.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit`], plus an error once attempts are
    /// exhausted.
    pub fn submit_with_retry(&self, manifest: &str, max_attempts: usize) -> io::Result<Submission> {
        let mut last = None;
        for _ in 0..max_attempts.max(1) {
            match self.submit(manifest)? {
                Submission::Rejected {
                    status,
                    retry_after,
                    message,
                } if status == 429 || status == 503 => {
                    let wait = retry_after.unwrap_or(1).clamp(1, 5);
                    std::thread::sleep(std::time::Duration::from_millis(wait * 100));
                    last = Some(Submission::Rejected {
                        status,
                        retry_after,
                        message,
                    });
                }
                other => return Ok(other),
            }
        }
        Ok(last.expect("at least one attempt was made"))
    }

    /// Fetches `GET /stats` as parsed JSON.
    ///
    /// # Errors
    ///
    /// Network failures, non-200 statuses, and malformed JSON.
    pub fn stats(&self) -> io::Result<Json> {
        let request = self.request("GET", "/stats", b"");
        let (head, mut stream) = self.send(&request)?;
        let body = read_sized_body(&head, &mut stream)?;
        if head.status != 200 {
            return Err(invalid(format!("/stats returned {}: {body}", head.status)));
        }
        Json::parse(&body).map_err(|e| invalid(format!("bad /stats JSON: {e}")))
    }

    /// Fetches `GET /health` as parsed JSON (`status` is one of `ok`,
    /// `draining`, `degraded`).
    ///
    /// # Errors
    ///
    /// Network failures, non-200 statuses, and malformed JSON.
    pub fn health(&self) -> io::Result<Json> {
        let request = self.request("GET", "/health", b"");
        let (head, mut stream) = self.send(&request)?;
        let body = read_sized_body(&head, &mut stream)?;
        if head.status != 200 {
            return Err(invalid(format!("/health returned {}: {body}", head.status)));
        }
        Json::parse(&body).map_err(|e| invalid(format!("bad /health JSON: {e}")))
    }

    /// Triggers graceful shutdown via `POST /shutdown`.
    ///
    /// # Errors
    ///
    /// Network failures and non-200 statuses.
    pub fn shutdown(&self) -> io::Result<()> {
        let request = self.request("POST", "/shutdown", b"");
        let (head, mut stream) = self.send(&request)?;
        let body = read_sized_body(&head, &mut stream)?;
        if head.status != 200 {
            return Err(invalid(format!(
                "/shutdown returned {}: {body}",
                head.status
            )));
        }
        Ok(())
    }
}

fn invalid(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads a `Content-Length`-framed body as UTF-8 text.
fn read_sized_body(head: &ResponseHead, stream: &mut TcpStream) -> io::Result<String> {
    let len: usize = head
        .header("content-length")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| invalid("response has no Content-Length"))?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| invalid("response body is not UTF-8"))
}
