//! Admission control: a bounded FIFO queue with round-robin fairness
//! across client identities, per-client in-flight quotas, and
//! load-shedding.
//!
//! The model:
//!
//! * Every batch request becomes a **ticket**. A ticket is either
//!   *queued* (waiting for a run slot) or *running*.
//! * Each client identity has its own FIFO; a global **round-robin
//!   cursor** walks the clients in first-seen order, granting one run
//!   slot per non-empty queue per turn. One client flooding the queue
//!   cannot starve another: with `k` active clients, a newly arriving
//!   client waits at most `k - 1` grants before its first ticket runs.
//! * The *queued* population is bounded by `queue_depth`; beyond it
//!   requests are **shed** (HTTP 503 + `Retry-After`), never buffered.
//! * Each client may have at most `max_inflight_per_client` tickets
//!   queued + running; beyond it requests are rejected (HTTP 429).
//! * [`Admission::shutdown`] flips to draining: already-admitted
//!   tickets run to completion, new requests are shed.
//!
//! Tickets block on a condvar; [`Ticket::acquire`] returns a
//! [`RunningPermit`] whose drop releases the slot and promotes the next
//! ticket. Dropping an unacquired ticket (client disconnected while
//! queued) cleanly withdraws it.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// The global waiting queue is at `queue_depth`.
    QueueFull {
        /// The configured bound that was hit.
        depth: usize,
    },
    /// The client already has `max_inflight_per_client` tickets live.
    QuotaExceeded {
        /// The client's live (queued + running) ticket count.
        inflight: usize,
        /// The configured per-client bound.
        quota: usize,
    },
    /// The server is draining; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull { depth } => {
                write!(f, "queue full ({depth} batches waiting); retry later")
            }
            Reject::QuotaExceeded { inflight, quota } => write!(
                f,
                "client has {inflight} batches in flight (quota {quota}); \
                 wait for one to finish"
            ),
            Reject::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

/// A live snapshot of the admission state (the `/stats` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Tickets waiting for a run slot.
    pub queued: usize,
    /// Tickets currently holding a run slot.
    pub running: usize,
    /// Requests shed because the queue was full.
    pub shed_queue_full: usize,
    /// Requests rejected by the per-client quota.
    pub shed_quota: usize,
    /// Requests shed while draining.
    pub shed_shutdown: usize,
    /// Tickets admitted since startup.
    pub admitted: usize,
    /// Whether the controller is draining.
    pub shutting_down: bool,
}

#[derive(Debug, Default)]
struct State {
    shutting_down: bool,
    /// Clients in first-seen order — the round-robin ring.
    clients: Vec<String>,
    /// Per-client FIFO of queued ticket ids.
    queues: HashMap<String, VecDeque<u64>>,
    /// Queued + running tickets per client (the quota quantity).
    inflight: HashMap<String, usize>,
    /// Tickets promoted to a run slot, not yet picked up by their
    /// waiting thread (plus those actively running; `running` counts
    /// both).
    runnable: HashSet<u64>,
    queued: usize,
    running: usize,
    cursor: usize,
    next_ticket: u64,
    shed_queue_full: usize,
    shed_quota: usize,
    shed_shutdown: usize,
    admitted: usize,
}

impl State {
    /// Grants run slots to queued tickets, round-robin across clients.
    fn promote(&mut self, concurrency: usize) {
        while self.running < concurrency && self.queued > 0 {
            // Find the next client (from the cursor) with queued work.
            let n = self.clients.len();
            let mut granted = false;
            for step in 0..n {
                let idx = (self.cursor + step) % n;
                let client = &self.clients[idx];
                if let Some(id) = self.queues.get_mut(client).and_then(VecDeque::pop_front) {
                    self.runnable.insert(id);
                    self.queued -= 1;
                    self.running += 1;
                    // Deliberately not reduced modulo `n` here: a client
                    // first seen *after* this grant is appended to the
                    // ring, and an eagerly wrapped cursor would skip it.
                    // The scan above folds with the ring size of the day.
                    self.cursor = idx + 1;
                    granted = true;
                    break;
                }
            }
            debug_assert!(granted, "queued > 0 implies some non-empty queue");
            if !granted {
                break;
            }
        }
    }
}

/// The admission controller. Cheap to share via [`Arc`].
#[derive(Debug)]
pub struct Admission {
    queue_depth: usize,
    quota: usize,
    concurrency: usize,
    state: Mutex<State>,
    wake: Condvar,
}

impl Admission {
    /// A controller admitting up to `queue_depth` waiting tickets, at
    /// most `quota` live tickets per client, and `concurrency`
    /// simultaneous run slots. Zero values are clamped to 1.
    pub fn new(queue_depth: usize, quota: usize, concurrency: usize) -> Self {
        Admission {
            queue_depth: queue_depth.max(1),
            quota: quota.max(1),
            concurrency: concurrency.max(1),
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits a ticket for `client`, or sheds the request.
    ///
    /// # Errors
    ///
    /// [`Reject::ShuttingDown`] while draining, [`Reject::QuotaExceeded`]
    /// when the client is at its in-flight quota, [`Reject::QueueFull`]
    /// when the waiting queue is at depth. Quota is checked before queue
    /// depth so an over-quota client sees 429, not 503, even under load.
    pub fn try_enqueue(self: &Arc<Self>, client: &str) -> Result<Ticket, Reject> {
        let mut state = self.lock();
        if state.shutting_down {
            state.shed_shutdown += 1;
            return Err(Reject::ShuttingDown);
        }
        let inflight = state.inflight.get(client).copied().unwrap_or(0);
        if inflight >= self.quota {
            state.shed_quota += 1;
            return Err(Reject::QuotaExceeded {
                inflight,
                quota: self.quota,
            });
        }
        if state.queued >= self.queue_depth {
            state.shed_queue_full += 1;
            return Err(Reject::QueueFull {
                depth: self.queue_depth,
            });
        }
        let id = state.next_ticket;
        state.next_ticket += 1;
        if !state.queues.contains_key(client) {
            state.clients.push(client.to_string());
            state.queues.insert(client.to_string(), VecDeque::new());
        }
        state
            .queues
            .get_mut(client)
            .expect("just inserted")
            .push_back(id);
        *state.inflight.entry(client.to_string()).or_insert(0) += 1;
        state.queued += 1;
        state.admitted += 1;
        state.promote(self.concurrency);
        drop(state);
        self.wake.notify_all();
        Ok(Ticket {
            admission: Arc::clone(self),
            id,
            client: client.to_string(),
            resolved: false,
        })
    }

    /// Flips to draining: admitted tickets run to completion, new
    /// requests are shed with [`Reject::ShuttingDown`].
    pub fn shutdown(&self) {
        self.lock().shutting_down = true;
        self.wake.notify_all();
    }

    /// Blocks until every ticket (queued or running) has resolved.
    /// Call after [`Admission::shutdown`] to drain.
    pub fn wait_idle(&self) {
        let mut state = self.lock();
        while state.queued + state.running > 0 {
            state = self.wake.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> AdmissionStats {
        let state = self.lock();
        AdmissionStats {
            queued: state.queued,
            running: state.running,
            shed_queue_full: state.shed_queue_full,
            shed_quota: state.shed_quota,
            shed_shutdown: state.shed_shutdown,
            admitted: state.admitted,
            shutting_down: state.shutting_down,
        }
    }

    fn release(&self, client: &str) {
        let mut state = self.lock();
        state.running -= 1;
        if let Some(count) = state.inflight.get_mut(client) {
            *count -= 1;
        }
        state.promote(self.concurrency);
        drop(state);
        self.wake.notify_all();
    }

    fn withdraw(&self, id: u64, client: &str) {
        let mut state = self.lock();
        if state.runnable.remove(&id) {
            // Promoted but never picked up: it held a run slot.
            state.running -= 1;
        } else {
            // Still queued: pull it out of its client's FIFO.
            if let Some(queue) = state.queues.get_mut(client) {
                if let Some(pos) = queue.iter().position(|&q| q == id) {
                    queue.remove(pos);
                    state.queued -= 1;
                }
            }
        }
        if let Some(count) = state.inflight.get_mut(client) {
            *count -= 1;
        }
        state.promote(self.concurrency);
        drop(state);
        self.wake.notify_all();
    }
}

/// An admitted request waiting for its turn. [`Ticket::acquire`] blocks
/// until the round-robin scheduler grants a run slot.
#[derive(Debug)]
pub struct Ticket {
    admission: Arc<Admission>,
    id: u64,
    client: String,
    resolved: bool,
}

impl Ticket {
    /// Blocks until this ticket holds a run slot.
    pub fn acquire(mut self) -> RunningPermit {
        let mut state = self.admission.lock();
        while !state.runnable.contains(&self.id) {
            state = self
                .admission
                .wake
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.runnable.remove(&self.id);
        drop(state);
        self.resolved = true;
        RunningPermit {
            admission: Arc::clone(&self.admission),
            client: std::mem::take(&mut self.client),
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if !self.resolved {
            self.admission.withdraw(self.id, &self.client);
        }
    }
}

/// A held run slot; dropping it releases the slot and promotes the next
/// queued ticket.
#[derive(Debug)]
pub struct RunningPermit {
    admission: Arc<Admission>,
    client: String,
}

impl Drop for RunningPermit {
    fn drop(&mut self) {
        self.admission.release(&self.client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_fifo_order() {
        let adm = Arc::new(Admission::new(8, 8, 1));
        let t1 = adm.try_enqueue("a").unwrap();
        let t2 = adm.try_enqueue("a").unwrap();
        let p1 = t1.acquire(); // promoted immediately (slot free)
        assert_eq!(adm.stats().running, 1);
        assert_eq!(adm.stats().queued, 1);
        drop(p1);
        let p2 = t2.acquire();
        assert_eq!(adm.stats().running, 1);
        assert_eq!(adm.stats().queued, 0);
        drop(p2);
        assert_eq!(adm.stats().running, 0);
    }

    #[test]
    fn queue_depth_sheds_beyond_bound() {
        // Concurrency 1: first ticket takes the slot, next two wait,
        // fourth is shed (queue_depth 2 counts only *waiting* tickets).
        let adm = Arc::new(Admission::new(2, 8, 1));
        let _t1 = adm.try_enqueue("a").unwrap();
        let _t2 = adm.try_enqueue("b").unwrap();
        let _t3 = adm.try_enqueue("c").unwrap();
        let err = adm.try_enqueue("d").unwrap_err();
        assert_eq!(err, Reject::QueueFull { depth: 2 });
        assert_eq!(adm.stats().shed_queue_full, 1);
    }

    #[test]
    fn per_client_quota_rejects_before_queue_depth() {
        let adm = Arc::new(Admission::new(64, 2, 1));
        let _t1 = adm.try_enqueue("a").unwrap();
        let _t2 = adm.try_enqueue("a").unwrap();
        let err = adm.try_enqueue("a").unwrap_err();
        assert_eq!(
            err,
            Reject::QuotaExceeded {
                inflight: 2,
                quota: 2
            }
        );
        // A different client is unaffected.
        assert!(adm.try_enqueue("b").is_ok());
        assert_eq!(adm.stats().shed_quota, 1);
    }

    #[test]
    fn round_robin_interleaves_clients() {
        // Client a floods 3 tickets, then b submits 1. Grant order must
        // be a, b, a, a — b's first ticket is served after exactly one
        // of a's, not after all of them.
        let adm = Arc::new(Admission::new(16, 16, 1));
        let a1 = adm.try_enqueue("a").unwrap(); // takes the slot
        let a2 = adm.try_enqueue("a").unwrap();
        let a3 = adm.try_enqueue("a").unwrap();
        let b1 = adm.try_enqueue("b").unwrap();

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (ticket, tag) in [(a2, "a2"), (a3, "a3"), (b1, "b1")] {
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let permit = ticket.acquire();
                order.lock().unwrap().push(tag);
                // Hold briefly so the grant order is observable.
                std::thread::sleep(std::time::Duration::from_millis(10));
                drop(permit);
            }));
        }
        // Give the waiters time to block, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(a1.acquire());
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec!["b1", "a2", "a3"]);
    }

    #[test]
    fn shutdown_sheds_new_but_drains_admitted() {
        let adm = Arc::new(Admission::new(8, 8, 1));
        let t1 = adm.try_enqueue("a").unwrap();
        adm.shutdown();
        assert_eq!(adm.try_enqueue("b").unwrap_err(), Reject::ShuttingDown);
        assert_eq!(adm.stats().shed_shutdown, 1);
        // The admitted ticket still runs.
        let permit = t1.acquire();
        assert_eq!(adm.stats().running, 1);
        drop(permit);
        adm.wait_idle();
        assert_eq!(adm.stats().running + adm.stats().queued, 0);
    }

    #[test]
    fn dropping_a_queued_ticket_withdraws_it() {
        let adm = Arc::new(Admission::new(8, 8, 1));
        let t1 = adm.try_enqueue("a").unwrap();
        let t2 = adm.try_enqueue("a").unwrap();
        assert_eq!(adm.stats().queued, 1);
        drop(t2); // client went away while queued
        assert_eq!(adm.stats().queued, 0);
        let inflight_after = {
            let t3 = adm.try_enqueue("a").unwrap();
            drop(t3);
            adm.stats()
        };
        assert_eq!(inflight_after.queued, 0);
        drop(t1.acquire());
        adm.wait_idle();
    }

    #[test]
    fn dropping_a_promoted_but_unacquired_ticket_frees_the_slot() {
        let adm = Arc::new(Admission::new(8, 8, 1));
        let t1 = adm.try_enqueue("a").unwrap(); // holds the slot
        assert_eq!(adm.stats().running, 1);
        drop(t1);
        assert_eq!(adm.stats().running, 0);
        // The slot is usable again.
        let t2 = adm.try_enqueue("b").unwrap();
        drop(t2.acquire());
    }

    #[test]
    fn concurrency_two_runs_two_at_once() {
        let adm = Arc::new(Admission::new(8, 8, 2));
        let t1 = adm.try_enqueue("a").unwrap();
        let t2 = adm.try_enqueue("b").unwrap();
        let t3 = adm.try_enqueue("c").unwrap();
        let p1 = t1.acquire();
        let p2 = t2.acquire();
        assert_eq!(adm.stats().running, 2);
        assert_eq!(adm.stats().queued, 1);
        drop(p1);
        let p3 = t3.acquire();
        assert_eq!(adm.stats().running, 2);
        drop(p2);
        drop(p3);
        adm.wait_idle();
    }
}
