//! A minimal HTTP/1.1 layer built on `std` only: an incremental request
//! parser and a chunked-transfer-encoding response writer/reader.
//!
//! This is not a general web stack — it implements exactly the slice the
//! placement daemon speaks: one request per connection, `Content-Length`
//! bodies on requests, chunked streaming on responses. What it *does*
//! implement is implemented carefully:
//!
//! * **Torn-read resilience** — [`RequestParser::feed`] accepts bytes in
//!   arbitrary fragments (one byte at a time included) and yields the
//!   same parse as a single whole-buffer feed.
//! * **Case-insensitive headers** — lookups fold ASCII case, per RFC
//!   9110; stored header names keep their original spelling.
//! * **Bounded buffering** — the header section and the declared body
//!   size are both capped; oversized input is rejected *before* it is
//!   buffered, so a client cannot balloon server memory.

use std::io::{self, Read, Write};

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on request bodies (batch manifests are small).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parse-level rejection, mapped to an HTTP status by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or header (400).
    Malformed(String),
    /// Declared body exceeds the configured cap (413).
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Header section exceeds [`MAX_HEAD_BYTES`] (431).
    HeadTooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// A complete parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (`/batch`, `/stats`, …).
    pub target: String,
    /// Headers in arrival order, original spelling preserved.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of `name`, compared ASCII-case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Renders this request as HTTP/1.1 wire bytes (the client side).
    /// A `Content-Length` header is emitted iff the body is non-empty.
    pub fn render(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", self.method, self.target).as_bytes());
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        if !self.body.is_empty() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[derive(Debug)]
enum ParseState {
    /// Accumulating head bytes until the blank line.
    Head,
    /// Head parsed; waiting for `remaining` more body bytes.
    Body { head: Request, remaining: usize },
}

/// An incremental HTTP/1.1 request parser.
///
/// Feed it whatever the socket delivers; it answers `Ok(None)` until a
/// full request is buffered, then `Ok(Some(request))`. The parse result
/// is a pure function of the concatenated input — fragment boundaries
/// never matter (property-tested in `tests/http_props.rs`).
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    state: ParseState,
    max_body: usize,
}

impl RequestParser {
    /// A parser accepting bodies up to `max_body` bytes.
    pub fn new(max_body: usize) -> Self {
        RequestParser {
            buf: Vec::new(),
            state: ParseState::Head,
            max_body,
        }
    }

    /// Consumes one fragment of input.
    ///
    /// # Errors
    ///
    /// Returns the first [`HttpError`] the accumulated input exhibits;
    /// after an error the parser must be discarded.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        self.buf.extend_from_slice(bytes);
        loop {
            match &mut self.state {
                ParseState::Head => {
                    let Some(head_end) = find_blank_line(&self.buf) else {
                        if self.buf.len() > MAX_HEAD_BYTES {
                            return Err(HttpError::HeadTooLarge);
                        }
                        return Ok(None);
                    };
                    if head_end > MAX_HEAD_BYTES {
                        return Err(HttpError::HeadTooLarge);
                    }
                    let head = parse_head(&self.buf[..head_end])?;
                    let remaining = match head.header("content-length") {
                        Some(v) => v.trim().parse::<usize>().map_err(|_| {
                            HttpError::Malformed(format!("bad Content-Length `{v}`"))
                        })?,
                        None => 0,
                    };
                    if remaining > self.max_body {
                        return Err(HttpError::BodyTooLarge {
                            declared: remaining,
                            limit: self.max_body,
                        });
                    }
                    self.buf.drain(..head_end + 4);
                    self.state = ParseState::Body { head, remaining };
                }
                ParseState::Body { head, remaining } => {
                    if self.buf.len() < *remaining {
                        return Ok(None);
                    }
                    let mut request = std::mem::replace(
                        head,
                        Request {
                            method: String::new(),
                            target: String::new(),
                            headers: Vec::new(),
                            body: Vec::new(),
                        },
                    );
                    request.body = self.buf.drain(..*remaining).collect();
                    self.state = ParseState::Head;
                    return Ok(Some(request));
                }
            }
        }
    }
}

/// Index of the `\r\n\r\n` separator, if buffered.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("head is not valid UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{line}`")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name `{name}`")));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    })
}

/// Writes an HTTP/1.1 response head (status line + headers + blank line).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_response_head(
    out: &mut dyn Write,
    status: u16,
    reason: &str,
    headers: &[(&str, String)],
) -> io::Result<()> {
    write!(out, "HTTP/1.1 {status} {reason}\r\n")?;
    for (k, v) in headers {
        write!(out, "{k}: {v}\r\n")?;
    }
    write!(out, "\r\n")?;
    out.flush()
}

/// Writes a complete non-streaming response with a `Content-Length` body.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_response(
    out: &mut dyn Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut headers: Vec<(&str, String)> = vec![
        ("Content-Type", content_type.to_string()),
        ("Content-Length", body.len().to_string()),
        ("Connection", "close".to_string()),
    ];
    headers.extend(extra_headers.iter().map(|(k, v)| (*k, v.clone())));
    write_response_head(out, status, reason, &headers)?;
    out.write_all(body)?;
    out.flush()
}

/// The chunked-transfer-encoding writer: each [`ChunkedWriter::chunk`]
/// call becomes one `size\r\ndata\r\n` frame flushed immediately, so the
/// peer sees progress while the batch runs; [`ChunkedWriter::finish`]
/// writes the terminating zero-length chunk.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    out: W,
    finished: bool,
}

impl<W: Write> ChunkedWriter<W> {
    /// Wraps a writer positioned just past the response head.
    pub fn new(out: W) -> Self {
        ChunkedWriter {
            out,
            finished: false,
        }
    }

    /// Writes one chunk (empty input writes nothing: a zero-size chunk
    /// would terminate the stream).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.out, "{:x}\r\n", data.len())?;
        self.out.write_all(data)?;
        self.out.write_all(b"\r\n")?;
        self.out.flush()
    }

    /// Terminates the stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(b"0\r\n\r\n")?;
        self.out.flush()?;
        self.finished = true;
        Ok(self.out)
    }
}

/// Reads a full chunked-encoded body from `input` (the client side of
/// [`ChunkedWriter`]); consumes up to and including the terminating
/// chunk and the final CRLF.
///
/// # Errors
///
/// Returns `InvalidData` on malformed chunk framing and propagates
/// reader errors (including `UnexpectedEof` on truncation).
pub fn read_chunked_body(input: &mut dyn Read) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = read_crlf_line(input)?;
        let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad chunk size `{size_line}`"),
            )
        })?;
        if size == 0 {
            // Trailing CRLF after the last-chunk line.
            let trailer = read_crlf_line(input)?;
            if !trailer.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected chunk trailer",
                ));
            }
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        input.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        input.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "chunk data not CRLF-terminated",
            ));
        }
    }
}

/// Reads bytes up to a CRLF, returning the line without the terminator.
fn read_crlf_line(input: &mut dyn Read) -> io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        input.read_exact(&mut byte)?;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 line"));
        }
        line.push(byte[0]);
        if line.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unterminated line",
            ));
        }
    }
}

/// A parsed response head (the client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseHead {
    /// The status code.
    pub status: u16,
    /// Headers in arrival order.
    pub headers: Vec<(String, String)>,
}

impl ResponseHead {
    /// The first value of `name`, compared ASCII-case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads a response head (status line + headers) from `input`.
///
/// # Errors
///
/// Returns `InvalidData` on malformed status or header lines and
/// propagates reader errors.
pub fn read_response_head(input: &mut dyn Read) -> io::Result<ResponseHead> {
    let status_line = read_crlf_line(input)?;
    let mut parts = status_line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad status line `{status_line}`"),
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad version `{version}`"),
        ));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("bad status `{code}`")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_crlf_line(input)?;
        if line.is_empty() {
            return Ok(ResponseHead { status, headers });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad header line `{line}`"),
            ));
        };
        headers.push((name.to_string(), value.trim().to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(body: &[u8]) -> Request {
        Request {
            method: "POST".into(),
            target: "/batch".into(),
            headers: vec![("X-Client".into(), "alice".into())],
            body: body.to_vec(),
        }
    }

    /// `render()` synthesizes a `Content-Length` header; strip it so a
    /// parsed request can be compared against the original.
    fn sans_content_length(mut r: Request) -> Request {
        r.headers
            .retain(|(k, _)| !k.eq_ignore_ascii_case("content-length"));
        r
    }

    #[test]
    fn whole_buffer_round_trip() {
        let req = request(b"{\"jobs\": []}");
        let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        let parsed = parser.feed(&req.render()).unwrap().unwrap();
        assert_eq!(sans_content_length(parsed), req);
    }

    #[test]
    fn byte_at_a_time_matches_whole_buffer() {
        let req = request(b"abc def \r\n\r\n ghi");
        let wire = req.render();
        let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        let mut torn = None;
        for &b in &wire {
            assert!(torn.is_none(), "must not complete early");
            torn = parser.feed(&[b]).unwrap();
        }
        assert_eq!(sans_content_length(torn.unwrap()), req);
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = request(b"x");
        let parsed = RequestParser::new(1024)
            .feed(&req.render())
            .unwrap()
            .unwrap();
        assert_eq!(parsed.header("x-client"), Some("alice"));
        assert_eq!(parsed.header("X-CLIENT"), Some("alice"));
        assert_eq!(parsed.header("content-LENGTH"), Some("1"));
        assert_eq!(parsed.header("absent"), None);
    }

    #[test]
    fn no_content_length_means_empty_body() {
        let mut parser = RequestParser::new(1024);
        let parsed = parser
            .feed(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(parsed.method, "GET");
        assert_eq!(parsed.target, "/stats");
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_buffering() {
        let mut parser = RequestParser::new(16);
        let err = parser
            .feed(b"POST /batch HTTP/1.1\r\nContent-Length: 17\r\n\r\n")
            .unwrap_err();
        assert_eq!(
            err,
            HttpError::BodyTooLarge {
                declared: 17,
                limit: 16
            }
        );
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut parser = RequestParser::new(1024);
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(
            parser.feed(huge.as_bytes()).unwrap_err(),
            HttpError::HeadTooLarge
        );
        // Also when the head never terminates.
        let mut parser = RequestParser::new(1024);
        let drip = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert_eq!(parser.feed(&drip).unwrap_err(), HttpError::HeadTooLarge);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "NOPE\r\n\r\n",
            "GET /x HTTP/2.3\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
        ] {
            let mut parser = RequestParser::new(1024);
            assert!(
                matches!(
                    parser.feed(bad.as_bytes()),
                    Err(HttpError::Malformed(_) | HttpError::BodyTooLarge { .. })
                ),
                "`{}` must be rejected",
                bad.escape_debug()
            );
        }
    }

    #[test]
    fn chunked_writer_then_reader_round_trips() {
        let mut wire = Vec::new();
        {
            let mut w = ChunkedWriter::new(&mut wire);
            w.chunk(b"hello ").unwrap();
            w.chunk(b"").unwrap(); // ignored, not a terminator
            w.chunk(b"world").unwrap();
            w.finish().unwrap();
        }
        let body = read_chunked_body(&mut wire.as_slice()).unwrap();
        assert_eq!(body, b"hello world");
    }

    #[test]
    fn chunked_reader_rejects_garbage_and_truncation() {
        assert!(read_chunked_body(&mut &b"zz\r\n"[..]).is_err());
        // Truncated mid-chunk.
        let mut wire = Vec::new();
        {
            let mut w = ChunkedWriter::new(&mut wire);
            w.chunk(b"hello").unwrap();
        }
        wire.truncate(wire.len() - 4);
        assert!(read_chunked_body(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn response_head_round_trips() {
        let mut wire = Vec::new();
        write_response_head(
            &mut wire,
            503,
            "Service Unavailable",
            &[("Retry-After", "2".to_string())],
        )
        .unwrap();
        let head = read_response_head(&mut wire.as_slice()).unwrap();
        assert_eq!(head.status, 503);
        assert_eq!(head.header("retry-after"), Some("2"));
    }

    #[test]
    fn full_response_carries_content_length() {
        let mut wire = Vec::new();
        write_response(&mut wire, 400, "Bad Request", &[], "text/plain", b"nope").unwrap();
        let head = read_response_head(&mut wire.as_slice()).unwrap();
        assert_eq!(head.status, 400);
        assert_eq!(head.header("Content-Length"), Some("4"));
        let text = String::from_utf8(wire).unwrap();
        assert!(text.ends_with("nope"));
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let a = request(b"one");
        let b = request(b"two");
        let mut wire = a.render();
        wire.extend_from_slice(&b.render());
        let mut parser = RequestParser::new(1024);
        assert_eq!(sans_content_length(parser.feed(&wire).unwrap().unwrap()), a);
        assert_eq!(sans_content_length(parser.feed(&[]).unwrap().unwrap()), b);
    }
}
