//! The serving daemon: TCP accept loop, request routing, and the batch
//! execution path that streams telemetry while jobs run.
//!
//! One [`Server`] owns one listening socket and a set of long-lived
//! shared resources:
//!
//! * a warm [`DesignCache`] — designs parsed or synthesized for one
//!   request are reused by every later request (the process-wide DCT
//!   plan cache warms the same way),
//! * an [`Admission`] controller — bounded queue, round-robin client
//!   fairness, per-client quotas, load shedding,
//! * a draining flag — `POST /shutdown` flips it; in-flight jobs finish
//!   (never interrupted), not-yet-started jobs of admitted batches are
//!   reported as cancelled, and new requests are shed with 503.
//!
//! Endpoints:
//!
//! * `POST /batch` — body is a batch-manifest JSON; the response is a
//!   chunked stream of [`Frame`]s (see [`crate::wire`]).
//! * `GET /stats` — queue/shed/cache counters as one JSON object.
//! * `POST /shutdown` — begin graceful drain; `run` returns once every
//!   admitted batch has streamed its final frame.
//!
//! # Determinism contract
//!
//! A manifest submitted over the wire produces per-job traces and a
//! batch report **byte-identical** (traces) and comparator-equivalent
//! (report) to `xplace batch` on the same manifest with the same
//! `--threads` — for any thread count. The raw interleaving of frames
//! across jobs is scheduling-dependent, but per-job frame order is not,
//! and the client reassembles per-job artifacts exactly.

use crate::admission::{Admission, Reject};
use crate::http::{
    write_response, write_response_head, ChunkedWriter, HttpError, Request, RequestParser,
};
use crate::wire::Frame;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use xplace_db::DesignCache;
use xplace_sched::{run_batch_session, BatchEvent, BatchManifest, BatchSession};
use xplace_telemetry::{Json, ToJson};

/// How a [`Server`] behaves: where it listens and how it bounds load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Kernel thread width every job runs with (config echo; never
    /// changes metrics).
    pub threads: usize,
    /// Maximum *waiting* batches before requests are shed with 503.
    pub queue_depth: usize,
    /// Maximum queued + running batches per client identity (429
    /// beyond it).
    pub max_inflight_per_client: usize,
    /// Batches executing simultaneously. The default of 1 runs batches
    /// strictly in admission order; higher values trade that for
    /// throughput (per-job artifacts stay deterministic either way).
    pub concurrency: usize,
    /// Request-body cap in bytes (413 beyond it).
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            queue_depth: 16,
            max_inflight_per_client: 4,
            concurrency: 1,
            max_body_bytes: crate::http::DEFAULT_MAX_BODY_BYTES,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    batches_completed: usize,
    jobs_completed: usize,
    jobs_failed: usize,
}

#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    local_addr: SocketAddr,
    cache: DesignCache,
    admission: Arc<Admission>,
    /// Set by `POST /shutdown`: batches stop starting new jobs, new
    /// requests are shed. The daemon keeps answering while it drains.
    draining: AtomicBool,
    /// Set once the drain is complete: the accept loop exits.
    terminate: AtomicBool,
    counters: Mutex<Counters>,
}

/// The serving daemon. [`Server::bind`] then [`Server::run`] (or
/// [`Server::spawn`] from tests).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket; the daemon is not accepting until
    /// [`Server::run`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let admission = Arc::new(Admission::new(
            config.queue_depth,
            config.max_inflight_per_client,
            config.concurrency,
        ));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                local_addr,
                cache: DesignCache::new(),
                admission,
                draining: AtomicBool::new(false),
                terminate: AtomicBool::new(false),
                counters: Mutex::new(Counters::default()),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Accepts and serves connections until a `POST /shutdown` drains
    /// the daemon: admitted batches stream to completion, then this
    /// returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket errors (per-connection I/O errors
    /// only drop that connection).
    pub fn run(self) -> io::Result<()> {
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let (stream, peer) = self.listener.accept()?;
            if self.shared.terminate.load(Ordering::Acquire) {
                // The post-drain wake-up (or a raced-in client): stop
                // accepting. While *draining* the loop keeps serving —
                // new batches are shed with 503 by admission, `/stats`
                // stays live — so this only fires once the drain is
                // complete and the daemon is going away.
                drop(stream);
                break;
            }
            let shared = Arc::clone(&self.shared);
            handles.push(std::thread::spawn(move || {
                // Errors are per-connection: the peer vanished or spoke
                // garbage. Nothing to do but drop the stream.
                let _ = handle_connection(stream, peer, &shared);
            }));
            handles.retain(|h| !h.is_finished());
        }
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.admission.wait_idle();
        Ok(())
    }

    /// Runs the daemon on a background thread; returns the bound
    /// address and the join handle (which resolves after graceful
    /// shutdown).
    pub fn spawn(self) -> (SocketAddr, JoinHandle<io::Result<()>>) {
        let addr = self.local_addr();
        (addr, std::thread::spawn(move || self.run()))
    }
}

fn handle_connection(stream: TcpStream, peer: SocketAddr, shared: &Shared) -> io::Result<()> {
    // A connected-but-silent peer must not pin the drain join forever.
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let request = match read_request(&stream, shared.config.max_body_bytes) {
        Ok(Some(request)) => request,
        Ok(None) => return Ok(()), // peer closed before a full request
        Err(error) => return reject_http(&stream, &error),
    };
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/batch") => handle_batch(&stream, peer, shared, &request),
        ("GET", "/stats") => handle_stats(&stream, shared),
        ("GET", "/health") => handle_health(&stream, shared),
        ("POST", "/shutdown") => handle_shutdown(&stream, shared),
        (_, target) => write_response(
            &mut &stream,
            404,
            "Not Found",
            &[],
            "text/plain",
            format!("no route for {} {target}\n", request.method).as_bytes(),
        ),
    }
}

/// Reads one full request, feeding the parser whatever the socket
/// delivers (arbitrary fragmentation).
fn read_request(mut stream: &TcpStream, max_body: usize) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new(max_body);
    let mut buf = [0u8; 8192];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(n) => n,
            Err(e) => return Err(HttpError::Malformed(format!("read error: {e}"))),
        };
        if let Some(request) = parser.feed(&buf[..n])? {
            return Ok(Some(request));
        }
    }
}

fn reject_http(stream: &TcpStream, error: &HttpError) -> io::Result<()> {
    let (status, reason) = match error {
        HttpError::Malformed(_) => (400, "Bad Request"),
        HttpError::BodyTooLarge { .. } => (413, "Content Too Large"),
        HttpError::HeadTooLarge => (431, "Request Header Fields Too Large"),
    };
    write_response(
        &mut &*stream,
        status,
        reason,
        &[],
        "text/plain",
        format!("{error}\n").as_bytes(),
    )?;
    // The request may be partly unread (an oversized body is rejected at
    // the head, before its bytes arrive). Closing a socket with unread
    // bytes queued sends RST, which can destroy the response before the
    // peer reads it — so drain, bounded, until the peer closes. The
    // connection's read timeout still caps a peer that never does.
    let mut scratch = [0u8; 8192];
    let mut drained = 0usize;
    let mut reader = stream;
    while drained < 4 * 1024 * 1024 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
    Ok(())
}

/// The client identity quotas and fairness key on: the `X-Client`
/// header when present, else the peer IP (not the port — every
/// connection has a fresh port).
fn client_identity(request: &Request, peer: SocketAddr) -> String {
    request
        .header("x-client")
        .map(str::to_string)
        .unwrap_or_else(|| peer.ip().to_string())
}

fn handle_batch(
    stream: &TcpStream,
    peer: SocketAddr,
    shared: &Shared,
    request: &Request,
) -> io::Result<()> {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            return write_response(
                &mut &*stream,
                400,
                "Bad Request",
                &[],
                "text/plain",
                b"manifest body is not valid UTF-8\n",
            )
        }
    };
    let mut manifest = match BatchManifest::parse(body) {
        Ok(manifest) => manifest,
        Err(error) => {
            return write_response(
                &mut &*stream,
                400,
                "Bad Request",
                &[],
                "text/plain",
                format!("manifest rejected: {error}\n").as_bytes(),
            )
        }
    };
    // A per-request modeled-time deadline caps every job of the batch
    // (manifest- or job-level deadlines still win where tighter, since
    // job-level overrides beat the manifest default in sched).
    if let Some(raw) = request.header("x-deadline-ns") {
        match raw.trim().parse::<u64>() {
            Ok(ns) => {
                manifest.deadline_ns = Some(match manifest.deadline_ns {
                    Some(existing) => existing.min(ns),
                    None => ns,
                });
            }
            Err(_) => {
                return write_response(
                    &mut &*stream,
                    400,
                    "Bad Request",
                    &[],
                    "text/plain",
                    format!("X-Deadline-Ns must be a non-negative integer, got {raw:?}\n")
                        .as_bytes(),
                )
            }
        }
    }
    let client = client_identity(request, peer);
    let ticket = match shared.admission.try_enqueue(&client) {
        Ok(ticket) => ticket,
        Err(reject) => {
            let (status, reason, retry_after) = match &reject {
                Reject::QueueFull { .. } => (503, "Service Unavailable", Some(1u64)),
                Reject::ShuttingDown => (503, "Service Unavailable", Some(5u64)),
                Reject::QuotaExceeded { .. } => (429, "Too Many Requests", Some(1u64)),
            };
            let extra: Vec<(&str, String)> = retry_after
                .map(|s| vec![("Retry-After", s.to_string())])
                .unwrap_or_default();
            return write_response(
                &mut &*stream,
                status,
                reason,
                &extra,
                "text/plain",
                format!("{reject}\n").as_bytes(),
            );
        }
    };

    // Block until the round-robin scheduler grants a run slot, then
    // hold it for the whole batch (dropped at the end of this scope).
    let _permit = ticket.acquire();

    write_response_head(
        &mut &*stream,
        200,
        "OK",
        &[
            ("Content-Type", "application/json".to_string()),
            ("Transfer-Encoding", "chunked".to_string()),
            ("Connection", "close".to_string()),
        ],
    )?;

    // Frames go out under one lock so chunks never interleave
    // mid-frame. A peer that vanished mid-stream flips `dead`: in-flight
    // jobs drain bit-identically (their results still count server-side
    // and keep warming the caches), but this request's not-yet-started
    // jobs are skipped — nobody is listening for them. Sibling requests
    // have their own flag and are unaffected.
    let writer = Mutex::new(ChunkedWriter::new(stream));
    let dead = AtomicBool::new(false);
    // A `drop_connection` fault targeting this client identity severs the
    // stream after the scheduled frame count — the deterministic stand-in
    // for a peer vanishing mid-stream (real RST timing is racy), driving
    // the exact same skip/drain path below. The counter only arms on the
    // first `JobStart` ack: counting from hello would race jobs that
    // finish (or fail a deadline) before any work frame goes out, making
    // which frame the sever lands on depend on pool timing.
    let drop_after = manifest.faults.drop_after_frames(&client, 0);
    let armed = AtomicBool::new(false);
    let sent = AtomicUsize::new(0);
    let send = |frame: &Frame| {
        if dead.load(Ordering::Relaxed) {
            return;
        }
        if let Some(limit) = drop_after {
            if armed.load(Ordering::Relaxed) && sent.fetch_add(1, Ordering::Relaxed) >= limit {
                dead.store(true, Ordering::Relaxed);
                return;
            }
        }
        let mut line = frame.to_json_string();
        line.push('\n');
        let mut writer = writer.lock().unwrap_or_else(|e| e.into_inner());
        if writer.chunk(line.as_bytes()).is_err() {
            dead.store(true, Ordering::Relaxed);
        }
    };

    send(&Frame::Hello {
        jobs: manifest.jobs.iter().map(|j| j.name.clone()).collect(),
        threads: shared.config.threads,
    });

    let observer = |event: BatchEvent<'_>| match event {
        BatchEvent::JobStart { job } => {
            // Positive ack that this job's stream is live; arms the
            // scheduled drop above (the ack itself is the first counted
            // frame, so `after_frames: 0` severs right here).
            armed.store(true, Ordering::Relaxed);
            send(&Frame::Start { job });
        }
        BatchEvent::TraceLine { job, line } => send(&Frame::Trace {
            job,
            line: line.to_string(),
        }),
        BatchEvent::JobDone { job, record } => send(&Frame::Job {
            job,
            record: record.clone(),
        }),
    };
    let session = BatchSession::new(shared.config.threads, &shared.cache)
        .with_cancel(&shared.draining)
        .with_client_gone(&dead)
        .with_observer(&observer);
    let outcome = run_batch_session(&manifest, &session);

    {
        let mut counters = shared.counters.lock().unwrap_or_else(|e| e.into_inner());
        counters.batches_completed += 1;
        counters.jobs_completed += outcome.report.completed();
        counters.jobs_failed += outcome.report.failed();
    }

    send(&Frame::Batch {
        report: outcome.report,
        cache: outcome.cache_stats,
    });
    if !dead.load(Ordering::Relaxed) {
        writer
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .finish()?;
    }
    Ok(())
}

fn handle_stats(stream: &TcpStream, shared: &Shared) -> io::Result<()> {
    let admission = shared.admission.stats();
    let (design_hits, design_misses) = shared.cache.stats();
    let (plan_hits, plan_misses) = xplace_fft::plan_cache_stats();
    let counters = {
        let c = shared.counters.lock().unwrap_or_else(|e| e.into_inner());
        (c.batches_completed, c.jobs_completed, c.jobs_failed)
    };
    let body = Json::obj([
        ("queued", admission.queued.to_json()),
        ("running", admission.running.to_json()),
        ("admitted", admission.admitted.to_json()),
        (
            "shed",
            Json::obj([
                ("queue_full", admission.shed_queue_full.to_json()),
                ("quota", admission.shed_quota.to_json()),
                ("shutdown", admission.shed_shutdown.to_json()),
            ]),
        ),
        ("shutting_down", admission.shutting_down.to_json()),
        ("batches_completed", counters.0.to_json()),
        ("jobs_completed", counters.1.to_json()),
        ("jobs_failed", counters.2.to_json()),
        (
            "design_cache",
            Json::obj([
                ("hits", design_hits.to_json()),
                ("misses", design_misses.to_json()),
                ("entries", shared.cache.len().to_json()),
                ("capacity", shared.cache.capacity().to_json()),
                ("evictions", shared.cache.evictions().to_json()),
            ]),
        ),
        (
            "plan_cache",
            Json::obj([
                ("hits", plan_hits.to_json()),
                ("misses", plan_misses.to_json()),
                ("evictions", xplace_fft::plan_cache_evictions().to_json()),
            ]),
        ),
        ("threads", shared.config.threads.to_json()),
    ]);
    write_response(
        &mut &*stream,
        200,
        "OK",
        &[],
        "application/json",
        format!("{}\n", body.render()).as_bytes(),
    )
}

/// `GET /health`: one of three states, always HTTP 200 so probes can
/// distinguish "unhealthy" from "unreachable":
///
/// * `draining` — `POST /shutdown` was received; new batches are shed.
/// * `degraded` — at least one job has failed since process start (the
///   daemon still serves, but something needs attention).
/// * `ok` — neither.
fn handle_health(stream: &TcpStream, shared: &Shared) -> io::Result<()> {
    let jobs_failed = {
        let c = shared.counters.lock().unwrap_or_else(|e| e.into_inner());
        c.jobs_failed
    };
    let status = if shared.draining.load(Ordering::Acquire) {
        "draining"
    } else if jobs_failed > 0 {
        "degraded"
    } else {
        "ok"
    };
    let body = Json::obj([
        ("status", Json::Str(status.to_string())),
        ("jobs_failed", jobs_failed.to_json()),
    ]);
    write_response(
        &mut &*stream,
        200,
        "OK",
        &[],
        "application/json",
        format!("{}\n", body.render()).as_bytes(),
    )
}

fn handle_shutdown(stream: &TcpStream, shared: &Shared) -> io::Result<()> {
    shared.draining.store(true, Ordering::Release);
    shared.admission.shutdown();
    write_response(
        &mut &*stream,
        200,
        "OK",
        &[],
        "text/plain",
        b"draining: in-flight jobs will finish, new requests are shed\n",
    )?;
    // Drain, then wake the accept loop so `run` can return. The daemon
    // keeps answering (503 for batches, live /stats) until every
    // admitted batch has streamed its final frame. A failed self-connect
    // just means the loop is already past accept.
    shared.admission.wait_idle();
    shared.terminate.store(true, Ordering::Release);
    let _ = TcpStream::connect(shared.local_addr);
    Ok(())
}
