//! The streaming wire format of `POST /batch` responses.
//!
//! A response body is a sequence of JSON **frames**, one per line, each
//! line sent as its own HTTP chunk the moment the underlying event
//! happens. Frames of different jobs interleave with pool scheduling,
//! but frames of a single job arrive in order, so the client can
//! reconstruct per-job artifacts that are *byte-identical* to what a
//! local `xplace batch` run writes:
//!
//! * [`Frame::Hello`] — first frame: the manifest's job names and the
//!   server's kernel thread width.
//! * [`Frame::Start`] — a job's attempt loop began; the positive ack
//!   that its trace stream is live. Skipped (cached/poisoned) jobs
//!   never emit it.
//! * [`Frame::Trace`] — one rendered JSON-lines telemetry event of one
//!   job (without its trailing newline; appending `'\n'` per line
//!   reassembles the job's `--trace` file exactly).
//! * [`Frame::Job`] — a job reached a terminal state; carries the
//!   [`JobRecord`] exactly as it will appear in the batch report.
//! * [`Frame::Batch`] — last frame: the assembled [`BatchReport`] plus
//!   the warm design-cache counters.
//!
//! [`assemble`] folds a parsed frame stream back into a [`WireBatch`],
//! the client-side mirror of `xplace_sched::BatchOutcome`.

use xplace_telemetry::{BatchReport, FromJson, JobRecord, JobStatus, Json, JsonError, ToJson};

/// One frame of a streamed batch response.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Stream opener: job names in manifest order + server thread width.
    Hello {
        /// Job names, in manifest order.
        jobs: Vec<String>,
        /// The kernel thread width jobs run with (config echo input).
        threads: usize,
    },
    /// Job `job` started running — its trace stream is now live.
    Start {
        /// Manifest index of the job.
        job: usize,
    },
    /// One telemetry line of job `job` (no trailing newline).
    Trace {
        /// Manifest index of the job.
        job: usize,
        /// The rendered JSON-lines event.
        line: String,
    },
    /// Job `job` finished (completed or failed).
    Job {
        /// Manifest index of the job.
        job: usize,
        /// Its terminal record.
        record: JobRecord,
    },
    /// Stream closer: the full report and design-cache `(hits, misses)`.
    Batch {
        /// The batch report, manifest-ordered.
        report: BatchReport,
        /// Cumulative design-cache counters of the serving cache.
        cache: (usize, usize),
    },
}

impl ToJson for Frame {
    fn to_json(&self) -> Json {
        match self {
            Frame::Hello { jobs, threads } => Json::obj([
                ("frame", Json::str("hello")),
                ("jobs", jobs.to_json()),
                ("threads", threads.to_json()),
            ]),
            Frame::Start { job } => {
                Json::obj([("frame", Json::str("start")), ("job", job.to_json())])
            }
            Frame::Trace { job, line } => Json::obj([
                ("frame", Json::str("trace")),
                ("job", job.to_json()),
                ("line", line.to_json()),
            ]),
            Frame::Job { job, record } => Json::obj([
                ("frame", Json::str("job")),
                ("job", job.to_json()),
                ("record", record.to_json()),
            ]),
            Frame::Batch { report, cache } => Json::obj([
                ("frame", Json::str("batch")),
                ("report", report.to_json()),
                (
                    "cache",
                    Json::obj([("hits", cache.0.to_json()), ("misses", cache.1.to_json())]),
                ),
            ]),
        }
    }
}

impl FromJson for Frame {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match String::from_json(value.field("frame")?)?.as_str() {
            "hello" => Ok(Frame::Hello {
                jobs: Vec::<String>::from_json(value.field("jobs")?)?,
                threads: usize::from_json(value.field("threads")?)?,
            }),
            "start" => Ok(Frame::Start {
                job: usize::from_json(value.field("job")?)?,
            }),
            "trace" => Ok(Frame::Trace {
                job: usize::from_json(value.field("job")?)?,
                line: String::from_json(value.field("line")?)?,
            }),
            "job" => Ok(Frame::Job {
                job: usize::from_json(value.field("job")?)?,
                record: JobRecord::from_json(value.field("record")?)?,
            }),
            "batch" => {
                let cache = value.field("cache")?;
                Ok(Frame::Batch {
                    report: BatchReport::from_json(value.field("report")?)?,
                    cache: (
                        usize::from_json(cache.field("hits")?)?,
                        usize::from_json(cache.field("misses")?)?,
                    ),
                })
            }
            other => Err(JsonError(format!("unknown frame kind `{other}`"))),
        }
    }
}

/// Parses a whole response body (one frame per line) into frames.
///
/// # Errors
///
/// Returns the 1-based line number and decode error of the first bad
/// line.
pub fn parse_frames(body: &str) -> Result<Vec<Frame>, String> {
    let mut frames = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let frame =
            Frame::from_json_str(line).map_err(|e| format!("frame line {}: {e}", idx + 1))?;
        frames.push(frame);
    }
    Ok(frames)
}

/// A reassembled batch result — the client-side mirror of
/// `xplace_sched::BatchOutcome`, reconstructed from the frame stream.
#[derive(Debug, Clone)]
pub struct WireBatch {
    /// The batch report (from the closing [`Frame::Batch`]).
    pub report: BatchReport,
    /// Per-job traces in manifest order, rebuilt line by line;
    /// `None` for failed jobs — exactly like `BatchOutcome::traces`.
    pub traces: Vec<Option<String>>,
    /// Cumulative design-cache `(hits, misses)` of the serving cache.
    pub cache_stats: (usize, usize),
    /// The server's kernel thread width (from [`Frame::Hello`]).
    pub threads: usize,
}

/// Folds a frame stream into a [`WireBatch`], checking stream shape:
/// hello first, batch last, every trace/job index in range, exactly one
/// terminal record per job, and per-job records consistent between the
/// stream and the closing report.
///
/// # Errors
///
/// Returns a description of the first malformed aspect of the stream.
pub fn assemble(frames: &[Frame]) -> Result<WireBatch, String> {
    let mut iter = frames.iter();
    let Some(Frame::Hello { jobs, threads }) = iter.next() else {
        return Err("stream must open with a hello frame".into());
    };
    let n = jobs.len();
    let mut traces: Vec<String> = vec![String::new(); n];
    let mut records: Vec<Option<&JobRecord>> = vec![None; n];
    let mut started: Vec<bool> = vec![false; n];
    let mut closing: Option<(&BatchReport, (usize, usize))> = None;
    for frame in iter {
        if closing.is_some() {
            return Err("frames after the closing batch frame".into());
        }
        match frame {
            Frame::Hello { .. } => return Err("duplicate hello frame".into()),
            Frame::Start { job } => {
                let flag = started
                    .get_mut(*job)
                    .ok_or_else(|| format!("start frame for out-of-range job {job}"))?;
                if *flag {
                    return Err(format!("duplicate start frame for job {job}"));
                }
                *flag = true;
            }
            Frame::Trace { job, line } => {
                let trace = traces
                    .get_mut(*job)
                    .ok_or_else(|| format!("trace frame for out-of-range job {job}"))?;
                if !started[*job] {
                    return Err(format!("trace frame for job {job} before its start frame"));
                }
                trace.push_str(line);
                trace.push('\n');
            }
            Frame::Job { job, record } => {
                let slot = records
                    .get_mut(*job)
                    .ok_or_else(|| format!("job frame for out-of-range job {job}"))?;
                if slot.is_some() {
                    return Err(format!("duplicate terminal record for job {job}"));
                }
                *slot = Some(record);
            }
            Frame::Batch { report, cache } => closing = Some((report, *cache)),
        }
    }
    let Some((report, cache_stats)) = closing else {
        return Err("stream ended without a batch frame".into());
    };
    if report.jobs.len() != n {
        return Err(format!(
            "report has {} jobs but hello announced {n}",
            report.jobs.len()
        ));
    }
    for (i, slot) in records.iter().enumerate() {
        let Some(record) = slot else {
            return Err(format!("job {i} never reached a terminal state"));
        };
        if *record != &report.jobs[i] {
            return Err(format!(
                "job {i}: streamed record disagrees with the closing report"
            ));
        }
        if record.name != jobs[i] {
            return Err(format!(
                "job {i}: record name `{}` != announced `{}`",
                record.name, jobs[i]
            ));
        }
    }
    let traces = report
        .jobs
        .iter()
        .zip(traces)
        .map(|(record, trace)| match record.status {
            JobStatus::Completed => Some(trace),
            JobStatus::Failed => None,
        })
        .collect();
    Ok(WireBatch {
        report: report.clone(),
        traces,
        cache_stats,
        threads: *threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, ok: bool) -> JobRecord {
        if ok {
            // A structurally minimal "completed" record is awkward to
            // fabricate without a RunReport; failed records exercise the
            // same code paths, so tests lean on those plus real reports
            // in the integration suite.
            JobRecord::failed(name, "x")
        } else {
            JobRecord::failed(name, "boom")
        }
    }

    fn stream() -> Vec<Frame> {
        vec![
            Frame::Hello {
                jobs: vec!["a".into(), "b".into()],
                threads: 4,
            },
            Frame::Start { job: 0 },
            Frame::Start { job: 1 },
            Frame::Trace {
                job: 0,
                line: "{\"e\":1}".into(),
            },
            Frame::Trace {
                job: 1,
                line: "{\"e\":2}".into(),
            },
            Frame::Trace {
                job: 0,
                line: "{\"e\":3}".into(),
            },
            Frame::Job {
                job: 1,
                record: record("b", false),
            },
            Frame::Job {
                job: 0,
                record: record("a", false),
            },
            Frame::Batch {
                report: BatchReport::new(vec![record("a", false), record("b", false)]),
                cache: (3, 2),
            },
        ]
    }

    #[test]
    fn frames_round_trip_through_json() {
        for frame in stream() {
            let line = frame.to_json_string();
            assert!(!line.contains('\n'), "frames must be single lines");
            let back = Frame::from_json_str(&line).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn parse_frames_reports_bad_lines() {
        let good = stream()[0].to_json_string();
        let err = parse_frames(&format!("{good}\nnot json\n")).unwrap_err();
        assert!(err.starts_with("frame line 2:"), "{err}");
        let err = parse_frames("{\"frame\":\"pony\"}").unwrap_err();
        assert!(err.contains("unknown frame kind"), "{err}");
    }

    #[test]
    fn assemble_reconstructs_interleaved_traces_in_per_job_order() {
        let batch = assemble(&stream()).unwrap();
        assert_eq!(batch.threads, 4);
        assert_eq!(batch.cache_stats, (3, 2));
        assert_eq!(batch.report.total(), 2);
        // Both jobs failed in this synthetic stream → traces suppressed,
        // mirroring BatchOutcome semantics.
        assert_eq!(batch.traces, vec![None, None]);
    }

    #[test]
    fn assemble_rejects_malformed_streams() {
        let frames = stream();
        // No hello.
        assert!(assemble(&frames[1..]).unwrap_err().contains("hello"));
        // Missing terminal record.
        let mut missing = frames.clone();
        missing.remove(6);
        assert!(assemble(&missing)
            .unwrap_err()
            .contains("never reached a terminal state"));
        // No closing batch frame.
        assert!(assemble(&frames[..frames.len() - 1])
            .unwrap_err()
            .contains("without a batch frame"));
        // Duplicate terminal record.
        let mut dup = frames.clone();
        dup.insert(7, frames[6].clone());
        assert!(assemble(&dup).unwrap_err().contains("duplicate terminal"));
        // Out-of-range trace index.
        let mut oob = frames.clone();
        oob.insert(
            3,
            Frame::Trace {
                job: 9,
                line: "{}".into(),
            },
        );
        assert!(assemble(&oob).unwrap_err().contains("out-of-range"));
        // Record disagreeing with the closing report.
        let mut liar = frames.clone();
        liar[6] = Frame::Job {
            job: 1,
            record: record("b-lies", false),
        };
        assert!(assemble(&liar).unwrap_err().contains("disagrees"));
        // Duplicate start ack.
        let mut restart = frames.clone();
        restart.insert(2, Frame::Start { job: 0 });
        assert!(assemble(&restart)
            .unwrap_err()
            .contains("duplicate start frame for job 0"));
        // Out-of-range start ack.
        let mut wild = frames.clone();
        wild.insert(1, Frame::Start { job: 9 });
        assert!(assemble(&wild)
            .unwrap_err()
            .contains("start frame for out-of-range job 9"));
        // Trace lines must follow the job's start ack.
        let mut eager = frames.clone();
        let start = eager.remove(1);
        eager.push(start); // keep the stream shape otherwise valid
        let err = assemble(&eager).unwrap_err();
        assert!(err.contains("before its start frame"), "{err}");
    }
}
