//! Placement-as-a-service for the xplace workspace.
//!
//! The paper frames placement throughput as a *batch* problem: a suite
//! of designs placed under many configurations. This crate turns the
//! batch scheduler into a long-running daemon so that suite can arrive
//! over the network — while keeping the workspace hermetic (the whole
//! HTTP stack is `std`-only; zero registry dependencies).
//!
//! The moving parts, bottom-up:
//!
//! * [`http`] — an incremental, torn-read-resilient HTTP/1.1 request
//!   parser plus a chunked-transfer response writer/reader.
//! * [`admission`] — the bounded FIFO queue: round-robin fairness
//!   across client identities, per-client in-flight quotas, 503/429
//!   load shedding, graceful drain.
//! * [`wire`] — the streamed JSON frame format of batch responses and
//!   the client-side reassembly into per-job artifacts.
//! * [`server`] — the daemon: `POST /batch` (streamed execution on the
//!   persistent worker pool with warm shared caches), `GET /stats`,
//!   `POST /shutdown`.
//! * [`client`] — a blocking client used by the test suite, the soak
//!   harness, and CI's serve-vs-batch parity check.
//!
//! # Determinism contract
//!
//! A manifest submitted over the wire yields per-job traces
//! byte-identical to `xplace batch` on the same manifest and thread
//! count, and a report equivalent under the regression comparator —
//! for any `--threads`. See [`server`] for the precise statement.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod client;
pub mod http;
pub mod server;
pub mod wire;

pub use admission::{Admission, AdmissionStats, Reject, RunningPermit, Ticket};
pub use client::{Client, Submission};
pub use http::{HttpError, Request, RequestParser};
pub use server::{ServeConfig, Server};
pub use wire::{assemble, parse_frames, Frame, WireBatch};
