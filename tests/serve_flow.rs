//! End-to-end tests of the placement daemon: the serve-vs-batch
//! determinism contract, load shedding, per-client quotas, contextual
//! rejections, graceful drain, and warm caches across requests.
//!
//! The core claim under test: a manifest submitted over TCP yields
//! per-job traces **byte-identical** to `xplace batch` on the same
//! manifest and thread count, and a report equivalent under
//! [`compare_batch_reports`] — for any `--threads`.

use std::time::{Duration, Instant};
use xplace::sched::{run_batch, BatchManifest, CANCELLED_MSG};
use xplace::serve::{Client, ServeConfig, Server, Submission};
use xplace::telemetry::{compare_batch_reports, JobStatus, Json, Tolerances};

const MAX_ITERS: usize = 120;

fn parity_manifest() -> String {
    format!(
        r#"{{"jobs": [
            {{"name": "job0", "synth": {{"cells": 300, "nets": 320, "seed": 3}}, "max_iters": {MAX_ITERS}, "seed": 103}},
            {{"name": "job1", "synth": {{"cells": 260, "nets": 280, "seed": 4}}, "max_iters": {MAX_ITERS}, "seed": 104}},
            {{"name": "doomed", "synth": {{"cells": 340, "nets": 360, "seed": 5}}, "max_iters": {MAX_ITERS}, "seed": 105}}
        ],
        "faults": [{{"target": "doomed", "kind": "gp_panic", "iteration": 9}}]}}"#
    )
}

/// A single-job manifest slow enough (in a debug build) to still be
/// running when a follow-up request arrives a few milliseconds later.
fn slow_manifest(name: &str) -> String {
    format!(
        r#"{{"jobs": [{{"name": "{name}", "synth": {{"cells": 420, "nets": 450, "seed": 9}}, "max_iters": 900, "seed": 7}}]}}"#
    )
}

fn tiny_manifest(name: &str) -> String {
    format!(
        r#"{{"jobs": [{{"name": "{name}", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}}]}}"#
    )
}

fn serve(config: ServeConfig) -> (Client, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let (addr, handle) = server.spawn();
    (Client::new(addr.to_string()), handle)
}

fn stat(stats: &Json, key: &str) -> usize {
    stats
        .field(key)
        .and_then(|v| v.as_usize())
        .unwrap_or_else(|e| panic!("stats field {key}: {e}"))
}

/// Polls `/stats` until `pred` holds (30 s cap — generous for debug
/// builds; the typical wait is milliseconds).
fn wait_for_stats(client: &Client, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("/stats responds");
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last stats: {}",
            stats.render()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn wire_submission_matches_batch_bytewise_for_any_thread_count() {
    let manifest_text = parity_manifest();
    let manifest = BatchManifest::parse(&manifest_text).expect("manifest parses");
    for threads in [1usize, 4] {
        let reference = run_batch(&manifest, threads);
        let (client, handle) = serve(ServeConfig {
            threads,
            ..Default::default()
        });
        let wire = client
            .submit(&manifest_text)
            .expect("submission flows")
            .expect_completed();
        assert_eq!(wire.threads, threads, "hello frame echoes the width");

        // Per-job traces: byte-identical, including the failed job's
        // absence (None on both sides).
        assert_eq!(
            wire.traces, reference.traces,
            "wire traces must be byte-identical to xplace batch at {threads} thread(s)"
        );
        // Reports: equivalent under the regression comparator (which
        // hard-compares every deterministic quantity and the config
        // echo, and only warns on wall-clock drift).
        let cmp = compare_batch_reports(&reference.report, &wire.report, &Tolerances::default());
        assert!(
            cmp.passed(),
            "wire report diverged at {threads} thread(s): {:?}",
            cmp.failures
        );
        assert_eq!(wire.report.failed(), 1, "the injected fault is preserved");
        assert_eq!(wire.report.job("doomed").unwrap().status, JobStatus::Failed);

        client.shutdown().expect("shutdown");
        handle.join().unwrap().expect("server exits cleanly");
    }
}

#[test]
fn second_submission_runs_warm_and_identical() {
    let manifest_text = parity_manifest();
    let (client, handle) = serve(ServeConfig::default());

    let first = client.submit(&manifest_text).unwrap().expect_completed();
    let (h1, m1) = first.cache_stats;
    let second = client.submit(&manifest_text).unwrap().expect_completed();
    let (h2, m2) = second.cache_stats;

    // Exact accounting: the second submission re-reads the same three
    // designs from the warm cache — three more hits, zero new misses.
    assert_eq!(m1, 3, "cold submission loads every design");
    assert_eq!(m2, m1, "warm submission loads nothing new");
    assert_eq!(h2, h1 + 3, "warm submission hits once per job");
    // Warm results are byte-identical to cold results.
    assert_eq!(second.traces, first.traces);

    // /stats agrees with the wire-reported counters.
    let stats = client.stats().expect("/stats responds");
    let design = stats.field("design_cache").unwrap();
    assert_eq!(stat(design, "hits"), h2);
    assert_eq!(stat(design, "misses"), m2);
    assert_eq!(stat(design, "entries"), 3);
    assert_eq!(stat(&stats, "batches_completed"), 2);
    assert_eq!(stat(&stats, "jobs_completed"), 4);
    assert_eq!(stat(&stats, "jobs_failed"), 2);
    let plan = stats.field("plan_cache").unwrap();
    assert!(
        stat(plan, "hits") > 0,
        "repeated grids must reuse DCT plans"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let (client, handle) = serve(ServeConfig {
        queue_depth: 1,
        max_inflight_per_client: 8,
        ..Default::default()
    });

    // Occupy the run slot (client a), then the single queue slot
    // (client b); each step is confirmed via /stats before the next so
    // the shed is deterministic.
    let a = {
        let client = client.clone().with_identity("a");
        std::thread::spawn(move || client.submit(&slow_manifest("slow-a")).unwrap())
    };
    wait_for_stats(&client, "the slow batch to start", |s| {
        stat(s, "running") == 1
    });
    let b = {
        let client = client.clone().with_identity("b");
        std::thread::spawn(move || client.submit(&tiny_manifest("tiny-b")).unwrap())
    };
    wait_for_stats(&client, "the second batch to queue", |s| {
        stat(s, "queued") == 1
    });

    match client
        .clone()
        .with_identity("c")
        .submit(&tiny_manifest("tiny-c"))
        .unwrap()
    {
        Submission::Rejected {
            status,
            retry_after,
            message,
        } => {
            assert_eq!(status, 503);
            assert_eq!(retry_after, Some(1), "503 must carry Retry-After");
            assert!(message.contains("queue full"), "{message}");
        }
        Submission::Completed(_) => panic!("third batch must be shed"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stat(stats.field("shed").unwrap(), "queue_full"), 1);

    // The admitted batches still complete.
    a.join().unwrap().expect_completed();
    b.join().unwrap().expect_completed();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn per_client_quota_rejects_with_429_without_touching_other_clients() {
    let (client, handle) = serve(ServeConfig {
        max_inflight_per_client: 1,
        ..Default::default()
    });

    let alice_first = {
        let client = client.clone().with_identity("alice");
        std::thread::spawn(move || client.submit(&slow_manifest("slow-alice")).unwrap())
    };
    wait_for_stats(&client, "alice's batch to start", |s| {
        stat(s, "running") == 1
    });

    // Alice is at her quota: a second submission is rejected…
    match client
        .clone()
        .with_identity("alice")
        .submit(&tiny_manifest("tiny-alice"))
        .unwrap()
    {
        Submission::Rejected {
            status, message, ..
        } => {
            assert_eq!(status, 429);
            assert!(message.contains("quota"), "{message}");
        }
        Submission::Completed(_) => panic!("over-quota submission must be rejected"),
    }
    // …while bob is admitted (queued behind alice, then runs).
    let bob = client
        .clone()
        .with_identity("bob")
        .submit(&tiny_manifest("tiny-bob"))
        .unwrap()
        .expect_completed();
    assert!(bob.report.all_completed());

    let stats = client.stats().unwrap();
    assert_eq!(stat(stats.field("shed").unwrap(), "quota"), 1);
    alice_first.join().unwrap().expect_completed();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_get_contextual_rejections() {
    let (client, handle) = serve(ServeConfig {
        max_body_bytes: 4096,
        ..Default::default()
    });

    // Malformed JSON names the parse problem.
    match client.submit("{not json at all").unwrap() {
        Submission::Rejected {
            status, message, ..
        } => {
            assert_eq!(status, 400);
            assert!(message.contains("manifest rejected"), "{message}");
        }
        Submission::Completed(_) => panic!("garbage must be rejected"),
    }
    // Valid JSON, invalid manifest: the message names the exact rule.
    let dup = r#"{"jobs": [{"name": "a", "synth": {"cells": 10}},
                           {"name": "a", "synth": {"cells": 20}}]}"#;
    match client.submit(dup).unwrap() {
        Submission::Rejected {
            status, message, ..
        } => {
            assert_eq!(status, 400);
            assert!(message.contains("duplicate job name `a`"), "{message}");
        }
        Submission::Completed(_) => panic!("duplicate names must be rejected"),
    }
    // A body over the configured cap is refused before buffering.
    let huge = format!(
        r#"{{"jobs": [{{"name": "pad", "synth": {{"cells": 10}}, "comment": "{}"}}]}}"#,
        "x".repeat(8192)
    );
    match client.submit(&huge).unwrap() {
        Submission::Rejected {
            status, message, ..
        } => {
            assert_eq!(status, 413);
            assert!(message.contains("exceeds"), "{message}");
        }
        Submission::Completed(_) => panic!("oversized body must be rejected"),
    }
    // No jobs ran; nothing was admitted.
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "admitted"), 0);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn health_reports_ok_then_degraded() {
    let (client, handle) = serve(ServeConfig::default());
    let health = client.health().expect("/health responds");
    assert_eq!(
        health.field("status").unwrap().as_str().unwrap(),
        "ok",
        "a fresh daemon is healthy"
    );

    // One failed job (the injected gp_panic) flips the daemon to
    // degraded: it still serves, but something needs attention.
    client
        .submit(&parity_manifest())
        .unwrap()
        .expect_completed();
    let health = client.health().unwrap();
    assert_eq!(
        health.field("status").unwrap().as_str().unwrap(),
        "degraded"
    );
    assert_eq!(stat(&health, "jobs_failed"), 1);

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn wire_deadline_header_caps_every_job_of_the_batch() {
    let (client, handle) = serve(ServeConfig::default());

    // A 1 ns modeled deadline is unmeetable: every job must fail with
    // the deadline message, deterministically.
    let strict = client.clone().with_deadline_ns(1);
    let wire = strict
        .submit(&tiny_manifest("rushed"))
        .unwrap()
        .expect_completed();
    assert_eq!(wire.report.failed(), 1);
    let record = wire.report.job("rushed").unwrap();
    assert!(
        record
            .error
            .as_deref()
            .unwrap()
            .starts_with(xplace::sched::DEADLINE_MSG),
        "error was {:?}",
        record.error
    );
    assert!(record.deadline_exceeded);

    // A generous deadline changes nothing: bit-identical to no deadline.
    let relaxed = client.clone().with_deadline_ns(u64::MAX / 2);
    let capped = relaxed
        .submit(&tiny_manifest("easy"))
        .unwrap()
        .expect_completed();
    let free = client
        .submit(&tiny_manifest("easy"))
        .unwrap()
        .expect_completed();
    assert!(capped.report.all_completed());
    assert_eq!(capped.traces, free.traces);

    // A garbage header value is a 400 before any work starts.
    let raw = format!(
        "POST /batch HTTP/1.1\r\nHost: x\r\nX-Deadline-Ns: banana\r\nContent-Length: {}\r\n\r\n{}",
        tiny_manifest("junk").len(),
        tiny_manifest("junk")
    );
    let mut socket = std::net::TcpStream::connect(client.addr()).unwrap();
    std::io::Write::write_all(&mut socket, raw.as_bytes()).unwrap();
    let mut response = String::new();
    std::io::Read::read_to_string(&mut socket, &mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 400"),
        "expected 400, got: {}",
        response.lines().next().unwrap_or("")
    );
    assert!(response.contains("X-Deadline-Ns"), "{response}");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn mid_stream_disconnect_skips_that_clients_remaining_jobs_only() {
    // threads=1 serializes the disconnected batch's jobs; concurrency=2
    // lets a sibling batch run at the same time to prove isolation.
    let (client, handle) = serve(ServeConfig {
        threads: 1,
        concurrency: 2,
        ..Default::default()
    });
    let manifest_text = format!(
        r#"{{"jobs": [
            {{"name": "inflight", "synth": {{"cells": 420, "nets": 450, "seed": 9}}, "max_iters": 900, "seed": 7}},
            {{"name": "notstarted", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}}
        ]}}"#
    );

    // Submit over a raw socket so the connection can be dropped the
    // moment work starts (the high-level client blocks to completion).
    // Keep reading until the first job's start ack — the positive signal
    // that it is committed to run. Dropping earlier races the
    // response-head write and the server rightly treats that as a client
    // that died before the batch started (nothing runs, nothing is
    // counted); waiting for a *trace* frame instead would race jobs fast
    // enough to finish before any telemetry reaches the socket.
    let mut socket = std::net::TcpStream::connect(client.addr()).unwrap();
    let raw = format!(
        "POST /batch HTTP/1.1\r\nHost: x\r\nX-Client: quitter\r\nContent-Length: {}\r\n\r\n{manifest_text}",
        manifest_text.len()
    );
    std::io::Write::write_all(&mut socket, raw.as_bytes()).unwrap();
    let mut seen = Vec::new();
    let mut buf = [0u8; 4096];
    while !String::from_utf8_lossy(&seen).contains(r#""frame":"start""#) {
        let n = std::io::Read::read(&mut socket, &mut buf).unwrap();
        assert!(n > 0, "the stream ended before the first start ack");
        seen.extend_from_slice(&buf[..n]);
    }
    drop(socket); // mid-stream disconnect

    // A sibling client's batch, running concurrently, is unaffected —
    // byte-identical to an undisturbed run.
    let sibling = client
        .clone()
        .with_identity("steady")
        .submit(&tiny_manifest("steady-job"))
        .unwrap()
        .expect_completed();
    assert!(sibling.report.all_completed());
    let reference = run_batch(
        &BatchManifest::parse(&tiny_manifest("steady-job")).unwrap(),
        1,
    );
    assert_eq!(sibling.traces, reference.traces);

    // Server-side accounting: the quitter's in-flight job drains to
    // completion (results keep warming the caches), its unstarted job is
    // skipped as failed — exactly one completed + one failed beyond the
    // sibling's.
    let stats = wait_for_stats(&client, "the abandoned batch to finish", |s| {
        stat(s, "batches_completed") == 2
    });
    assert_eq!(stat(&stats, "jobs_completed"), 2, "inflight + sibling");
    assert_eq!(stat(&stats, "jobs_failed"), 1, "the skipped notstarted job");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn scheduled_drop_connection_fault_severs_the_stream_after_exact_frames() {
    // The deterministic twin of the raw-socket disconnect test above: a
    // `drop_connection` fault targeting the client identity severs the
    // stream after exactly `after_frames` frames, no RST races involved.
    let (client, handle) = serve(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let manifest_text = format!(
        r#"{{"jobs": [
            {{"name": "streamed", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}},
            {{"name": "skipped", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}}
        ],
        "faults": [{{"target": "flaky", "kind": "drop_connection", "after_frames": 3}}]}}"#
    );

    let mut socket = std::net::TcpStream::connect(client.addr()).unwrap();
    let raw = format!(
        "POST /batch HTTP/1.1\r\nHost: x\r\nX-Client: flaky\r\nContent-Length: {}\r\n\r\n{manifest_text}",
        manifest_text.len()
    );
    std::io::Write::write_all(&mut socket, raw.as_bytes()).unwrap();
    let mut wire = Vec::new();
    std::io::Read::read_to_end(&mut socket, &mut wire).unwrap();
    let text = String::from_utf8_lossy(&wire);

    // Every frame is one JSON line inside its own chunk, so `}\n` counts
    // frames exactly (escaped newlines inside trace strings are `\\n`).
    // The fault counter arms on the first job's start ack, so the wire
    // carries the hello (pre-arm, always delivered) plus exactly
    // `after_frames` counted frames: the start ack and two trace lines.
    assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
    let frames = text.matches("}\n").count();
    assert_eq!(frames, 4, "hello + after_frames counted frames");
    assert!(text.contains(r#""frame":"start""#), "{text}");
    assert!(
        !text.ends_with("0\r\n\r\n"),
        "a severed stream must not carry the terminal chunk"
    );

    // Server side, the fault drives the same skip/drain path as a real
    // disconnect: the in-flight job drains, the unstarted one is skipped.
    let stats = wait_for_stats(&client, "the severed batch to finish", |s| {
        stat(s, "batches_completed") == 1
    });
    assert_eq!(stat(&stats, "jobs_completed"), 1, "the draining job");
    assert_eq!(stat(&stats, "jobs_failed"), 1, "the skipped job");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn drop_fault_lands_deterministically_even_when_the_job_fails_instantly() {
    // Regression guard for the fast-finish interleaving: a job that dies
    // the moment it starts (a stall fault blowing an unmeetable wire
    // deadline) emits its start ack and terminal record nearly
    // back-to-back. Arming the drop counter on the start ack — not "the
    // first trace frame" — keeps the sever landing on the exact same
    // frame no matter how quickly the job collapses.
    let (client, handle) = serve(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let manifest_text = format!(
        r#"{{"jobs": [
            {{"name": "doomed", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}},
            {{"name": "skipped", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}}
        ],
        "faults": [
            {{"target": "doomed", "kind": "stall", "modeled_ns": 4000000000000}},
            {{"target": "hasty", "kind": "drop_connection", "after_frames": 1}}
        ]}}"#
    );
    let mut socket = std::net::TcpStream::connect(client.addr()).unwrap();
    let raw = format!(
        "POST /batch HTTP/1.1\r\nHost: x\r\nX-Client: hasty\r\nX-Deadline-Ns: 1000\r\nContent-Length: {}\r\n\r\n{manifest_text}",
        manifest_text.len()
    );
    std::io::Write::write_all(&mut socket, raw.as_bytes()).unwrap();
    let mut wire = Vec::new();
    std::io::Read::read_to_end(&mut socket, &mut wire).unwrap();
    let text = String::from_utf8_lossy(&wire);

    // Exactly hello + the start ack, every time: the ack is counted
    // frame 0 (delivered), and whatever follows it — a trace line or the
    // instant terminal record — is counted frame 1 and severed.
    assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
    let frames = text.matches("}\n").count();
    assert_eq!(frames, 2, "hello + the start ack, nothing else: {text}");
    assert!(text.contains(r#""frame":"start""#), "{text}");
    assert!(
        !text.ends_with("0\r\n\r\n"),
        "a severed stream must not carry the terminal chunk"
    );

    // The doomed job still runs to its deadline failure server-side; the
    // second job is skipped because the client is gone.
    let stats = wait_for_stats(&client, "the severed batch to finish", |s| {
        stat(s, "batches_completed") == 1
    });
    assert_eq!(stat(&stats, "jobs_completed"), 0);
    assert_eq!(
        stat(&stats, "jobs_failed"),
        2,
        "the deadline-doomed job + the skipped job"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn graceful_shutdown_drains_the_in_flight_job_and_cancels_the_rest() {
    // threads=1 serializes the batch's jobs, so exactly one is in
    // flight when the drain begins.
    let (client, handle) = serve(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let manifest_text = format!(
        r#"{{"jobs": [
            {{"name": "inflight", "synth": {{"cells": 420, "nets": 450, "seed": 9}}, "max_iters": 900, "seed": 7}},
            {{"name": "notstarted", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}}
        ]}}"#
    );
    let submitter = {
        let client = client.clone().with_identity("a");
        let manifest_text = manifest_text.clone();
        std::thread::spawn(move || client.submit(&manifest_text).unwrap())
    };
    // `running == 1` alone fires at permit-acquire, which can precede the
    // first job's cancel check; a design-cache miss proves job 0 is past
    // that check and actually executing.
    wait_for_stats(&client, "the first job to be in flight", |s| {
        stat(s, "running") == 1 && stat(s.field("design_cache").unwrap(), "misses") >= 1
    });

    client.shutdown().expect("shutdown accepted");

    // While draining, new work is shed with 503 (the daemon may also
    // already be gone if the drain won the race — both are acceptable
    // terminal behaviours, but the stream below must complete either
    // way).
    if let Ok(Submission::Rejected { status, .. }) = client.submit(&tiny_manifest("late")) {
        assert_eq!(status, 503);
    }

    // The drain guarantee: the admitted stream completes. The job that
    // was in flight finished normally — byte-identical to an
    // undisturbed run — and the job that had not started is reported
    // cancelled, not silently dropped.
    let wire = submitter.join().unwrap().expect_completed();
    assert_eq!(
        wire.report.job("inflight").unwrap().status,
        JobStatus::Completed,
        "the in-flight job must drain to completion"
    );
    assert_eq!(
        wire.report.job("notstarted").unwrap().error.as_deref(),
        Some(CANCELLED_MSG),
        "the unstarted job must be reported cancelled"
    );
    let reference = run_batch(
        &BatchManifest::parse(&slow_manifest("inflight")).unwrap(),
        1,
    );
    assert_eq!(
        wire.traces[0], reference.traces[0],
        "the drained job's trace must match an undisturbed run's"
    );

    handle
        .join()
        .unwrap()
        .expect("server exits after the drain");
    // Fully gone: connections are now refused.
    assert!(client.stats().is_err(), "daemon must be down after drain");
}
