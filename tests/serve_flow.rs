//! End-to-end tests of the placement daemon: the serve-vs-batch
//! determinism contract, load shedding, per-client quotas, contextual
//! rejections, graceful drain, and warm caches across requests.
//!
//! The core claim under test: a manifest submitted over TCP yields
//! per-job traces **byte-identical** to `xplace batch` on the same
//! manifest and thread count, and a report equivalent under
//! [`compare_batch_reports`] — for any `--threads`.

use std::time::{Duration, Instant};
use xplace::sched::{run_batch, BatchManifest, CANCELLED_MSG};
use xplace::serve::{Client, ServeConfig, Server, Submission};
use xplace::telemetry::{compare_batch_reports, JobStatus, Json, Tolerances};

const MAX_ITERS: usize = 120;

fn parity_manifest() -> String {
    format!(
        r#"{{"jobs": [
            {{"name": "job0", "synth": {{"cells": 300, "nets": 320, "seed": 3}}, "max_iters": {MAX_ITERS}, "seed": 103}},
            {{"name": "job1", "synth": {{"cells": 260, "nets": 280, "seed": 4}}, "max_iters": {MAX_ITERS}, "seed": 104}},
            {{"name": "doomed", "synth": {{"cells": 340, "nets": 360, "seed": 5}}, "max_iters": {MAX_ITERS}, "seed": 105, "fail_at": 9}}
        ]}}"#
    )
}

/// A single-job manifest slow enough (in a debug build) to still be
/// running when a follow-up request arrives a few milliseconds later.
fn slow_manifest(name: &str) -> String {
    format!(
        r#"{{"jobs": [{{"name": "{name}", "synth": {{"cells": 420, "nets": 450, "seed": 9}}, "max_iters": 900, "seed": 7}}]}}"#
    )
}

fn tiny_manifest(name: &str) -> String {
    format!(
        r#"{{"jobs": [{{"name": "{name}", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}}]}}"#
    )
}

fn serve(config: ServeConfig) -> (Client, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let (addr, handle) = server.spawn();
    (Client::new(addr.to_string()), handle)
}

fn stat(stats: &Json, key: &str) -> usize {
    stats
        .field(key)
        .and_then(|v| v.as_usize())
        .unwrap_or_else(|e| panic!("stats field {key}: {e}"))
}

/// Polls `/stats` until `pred` holds (30 s cap — generous for debug
/// builds; the typical wait is milliseconds).
fn wait_for_stats(client: &Client, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("/stats responds");
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last stats: {}",
            stats.render()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn wire_submission_matches_batch_bytewise_for_any_thread_count() {
    let manifest_text = parity_manifest();
    let manifest = BatchManifest::parse(&manifest_text).expect("manifest parses");
    for threads in [1usize, 4] {
        let reference = run_batch(&manifest, threads);
        let (client, handle) = serve(ServeConfig {
            threads,
            ..Default::default()
        });
        let wire = client
            .submit(&manifest_text)
            .expect("submission flows")
            .expect_completed();
        assert_eq!(wire.threads, threads, "hello frame echoes the width");

        // Per-job traces: byte-identical, including the failed job's
        // absence (None on both sides).
        assert_eq!(
            wire.traces, reference.traces,
            "wire traces must be byte-identical to xplace batch at {threads} thread(s)"
        );
        // Reports: equivalent under the regression comparator (which
        // hard-compares every deterministic quantity and the config
        // echo, and only warns on wall-clock drift).
        let cmp = compare_batch_reports(&reference.report, &wire.report, &Tolerances::default());
        assert!(
            cmp.passed(),
            "wire report diverged at {threads} thread(s): {:?}",
            cmp.failures
        );
        assert_eq!(wire.report.failed(), 1, "the injected fault is preserved");
        assert_eq!(wire.report.job("doomed").unwrap().status, JobStatus::Failed);

        client.shutdown().expect("shutdown");
        handle.join().unwrap().expect("server exits cleanly");
    }
}

#[test]
fn second_submission_runs_warm_and_identical() {
    let manifest_text = parity_manifest();
    let (client, handle) = serve(ServeConfig::default());

    let first = client.submit(&manifest_text).unwrap().expect_completed();
    let (h1, m1) = first.cache_stats;
    let second = client.submit(&manifest_text).unwrap().expect_completed();
    let (h2, m2) = second.cache_stats;

    // Exact accounting: the second submission re-reads the same three
    // designs from the warm cache — three more hits, zero new misses.
    assert_eq!(m1, 3, "cold submission loads every design");
    assert_eq!(m2, m1, "warm submission loads nothing new");
    assert_eq!(h2, h1 + 3, "warm submission hits once per job");
    // Warm results are byte-identical to cold results.
    assert_eq!(second.traces, first.traces);

    // /stats agrees with the wire-reported counters.
    let stats = client.stats().expect("/stats responds");
    let design = stats.field("design_cache").unwrap();
    assert_eq!(stat(design, "hits"), h2);
    assert_eq!(stat(design, "misses"), m2);
    assert_eq!(stat(design, "entries"), 3);
    assert_eq!(stat(&stats, "batches_completed"), 2);
    assert_eq!(stat(&stats, "jobs_completed"), 4);
    assert_eq!(stat(&stats, "jobs_failed"), 2);
    let plan = stats.field("plan_cache").unwrap();
    assert!(
        stat(plan, "hits") > 0,
        "repeated grids must reuse DCT plans"
    );

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let (client, handle) = serve(ServeConfig {
        queue_depth: 1,
        max_inflight_per_client: 8,
        ..Default::default()
    });

    // Occupy the run slot (client a), then the single queue slot
    // (client b); each step is confirmed via /stats before the next so
    // the shed is deterministic.
    let a = {
        let client = client.clone().with_identity("a");
        std::thread::spawn(move || client.submit(&slow_manifest("slow-a")).unwrap())
    };
    wait_for_stats(&client, "the slow batch to start", |s| {
        stat(s, "running") == 1
    });
    let b = {
        let client = client.clone().with_identity("b");
        std::thread::spawn(move || client.submit(&tiny_manifest("tiny-b")).unwrap())
    };
    wait_for_stats(&client, "the second batch to queue", |s| {
        stat(s, "queued") == 1
    });

    match client
        .clone()
        .with_identity("c")
        .submit(&tiny_manifest("tiny-c"))
        .unwrap()
    {
        Submission::Rejected {
            status,
            retry_after,
            message,
        } => {
            assert_eq!(status, 503);
            assert_eq!(retry_after, Some(1), "503 must carry Retry-After");
            assert!(message.contains("queue full"), "{message}");
        }
        Submission::Completed(_) => panic!("third batch must be shed"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stat(stats.field("shed").unwrap(), "queue_full"), 1);

    // The admitted batches still complete.
    a.join().unwrap().expect_completed();
    b.join().unwrap().expect_completed();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn per_client_quota_rejects_with_429_without_touching_other_clients() {
    let (client, handle) = serve(ServeConfig {
        max_inflight_per_client: 1,
        ..Default::default()
    });

    let alice_first = {
        let client = client.clone().with_identity("alice");
        std::thread::spawn(move || client.submit(&slow_manifest("slow-alice")).unwrap())
    };
    wait_for_stats(&client, "alice's batch to start", |s| {
        stat(s, "running") == 1
    });

    // Alice is at her quota: a second submission is rejected…
    match client
        .clone()
        .with_identity("alice")
        .submit(&tiny_manifest("tiny-alice"))
        .unwrap()
    {
        Submission::Rejected {
            status, message, ..
        } => {
            assert_eq!(status, 429);
            assert!(message.contains("quota"), "{message}");
        }
        Submission::Completed(_) => panic!("over-quota submission must be rejected"),
    }
    // …while bob is admitted (queued behind alice, then runs).
    let bob = client
        .clone()
        .with_identity("bob")
        .submit(&tiny_manifest("tiny-bob"))
        .unwrap()
        .expect_completed();
    assert!(bob.report.all_completed());

    let stats = client.stats().unwrap();
    assert_eq!(stat(stats.field("shed").unwrap(), "quota"), 1);
    alice_first.join().unwrap().expect_completed();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_get_contextual_rejections() {
    let (client, handle) = serve(ServeConfig {
        max_body_bytes: 4096,
        ..Default::default()
    });

    // Malformed JSON names the parse problem.
    match client.submit("{not json at all").unwrap() {
        Submission::Rejected {
            status, message, ..
        } => {
            assert_eq!(status, 400);
            assert!(message.contains("manifest rejected"), "{message}");
        }
        Submission::Completed(_) => panic!("garbage must be rejected"),
    }
    // Valid JSON, invalid manifest: the message names the exact rule.
    let dup = r#"{"jobs": [{"name": "a", "synth": {"cells": 10}},
                           {"name": "a", "synth": {"cells": 20}}]}"#;
    match client.submit(dup).unwrap() {
        Submission::Rejected {
            status, message, ..
        } => {
            assert_eq!(status, 400);
            assert!(message.contains("duplicate job name `a`"), "{message}");
        }
        Submission::Completed(_) => panic!("duplicate names must be rejected"),
    }
    // A body over the configured cap is refused before buffering.
    let huge = format!(
        r#"{{"jobs": [{{"name": "pad", "synth": {{"cells": 10}}, "comment": "{}"}}]}}"#,
        "x".repeat(8192)
    );
    match client.submit(&huge).unwrap() {
        Submission::Rejected {
            status, message, ..
        } => {
            assert_eq!(status, 413);
            assert!(message.contains("exceeds"), "{message}");
        }
        Submission::Completed(_) => panic!("oversized body must be rejected"),
    }
    // No jobs ran; nothing was admitted.
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "admitted"), 0);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn graceful_shutdown_drains_the_in_flight_job_and_cancels_the_rest() {
    // threads=1 serializes the batch's jobs, so exactly one is in
    // flight when the drain begins.
    let (client, handle) = serve(ServeConfig {
        threads: 1,
        ..Default::default()
    });
    let manifest_text = format!(
        r#"{{"jobs": [
            {{"name": "inflight", "synth": {{"cells": 420, "nets": 450, "seed": 9}}, "max_iters": 900, "seed": 7}},
            {{"name": "notstarted", "synth": {{"cells": 200, "nets": 210, "seed": 3}}, "max_iters": 60}}
        ]}}"#
    );
    let submitter = {
        let client = client.clone().with_identity("a");
        let manifest_text = manifest_text.clone();
        std::thread::spawn(move || client.submit(&manifest_text).unwrap())
    };
    // `running == 1` alone fires at permit-acquire, which can precede the
    // first job's cancel check; a design-cache miss proves job 0 is past
    // that check and actually executing.
    wait_for_stats(&client, "the first job to be in flight", |s| {
        stat(s, "running") == 1 && stat(s.field("design_cache").unwrap(), "misses") >= 1
    });

    client.shutdown().expect("shutdown accepted");

    // While draining, new work is shed with 503 (the daemon may also
    // already be gone if the drain won the race — both are acceptable
    // terminal behaviours, but the stream below must complete either
    // way).
    if let Ok(Submission::Rejected { status, .. }) = client.submit(&tiny_manifest("late")) {
        assert_eq!(status, 503);
    }

    // The drain guarantee: the admitted stream completes. The job that
    // was in flight finished normally — byte-identical to an
    // undisturbed run — and the job that had not started is reported
    // cancelled, not silently dropped.
    let wire = submitter.join().unwrap().expect_completed();
    assert_eq!(
        wire.report.job("inflight").unwrap().status,
        JobStatus::Completed,
        "the in-flight job must drain to completion"
    );
    assert_eq!(
        wire.report.job("notstarted").unwrap().error.as_deref(),
        Some(CANCELLED_MSG),
        "the unstarted job must be reported cancelled"
    );
    let reference = run_batch(
        &BatchManifest::parse(&slow_manifest("inflight")).unwrap(),
        1,
    );
    assert_eq!(
        wire.traces[0], reference.traces[0],
        "the drained job's trace must match an undisturbed run's"
    );

    handle
        .join()
        .unwrap()
        .expect("server exits after the drain");
    // Fully gone: connections are now refused.
    assert!(client.stats().is_err(), "daemon must be down after drain");
}
