//! Integration tests of the telemetry subsystem against the real placer:
//! trace structure, byte-identical determinism, report round-trips, and
//! the regression comparator on genuine run reports.

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::legal::{detailed_place, legalize, DpConfig};
use xplace::telemetry::{
    compare_reports, parse_trace, DpMetrics, FromJson, JsonLinesSink, LgMetrics, RunReport,
    TelemetryEvent, ToJson, Tolerances,
};

fn config(max_iters: usize) -> XplaceConfig {
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = max_iters;
    cfg
}

/// Runs a traced placement and returns the rendered JSON-lines trace.
fn traced_run(seed: u64, max_iters: usize, threads: usize) -> String {
    let spec = SynthesisSpec::new("tele", 400, 420).with_seed(seed);
    let mut design = synthesize(&spec).expect("synthesis succeeds");
    let mut sink = JsonLinesSink::new(Vec::new());
    GlobalPlacer::new(config(max_iters).with_threads(threads))
        .place_traced(&mut design, &mut sink)
        .expect("placement succeeds");
    String::from_utf8(sink.finish().expect("no I/O errors")).expect("valid UTF-8")
}

#[test]
fn trace_has_one_event_per_iteration_and_parses_back() {
    let text = traced_run(5, 150, 1);
    let events = parse_trace(&text).expect("trace parses");

    assert!(matches!(
        events.first(),
        Some(TelemetryEvent::RunStart { .. })
    ));
    assert!(matches!(events.last(), Some(TelemetryEvent::RunEnd { .. })));

    let iterations: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::Iteration { record, .. } => Some(record.iteration),
            _ => None,
        })
        .collect();
    assert!(!iterations.is_empty());
    assert!(
        iterations.iter().enumerate().all(|(i, &it)| i == it),
        "iteration events must be contiguous from zero"
    );

    // The stream carries schedule context beyond raw iterations: the skip
    // window opens early (§3.1.4) and λ is logged at initialization.
    assert!(events
        .iter()
        .any(|e| matches!(e, TelemetryEvent::SkipWindow { active: true, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, TelemetryEvent::LambdaUpdate { iteration: 0, .. })));

    // Each line re-renders to exactly itself (lossless round-trip).
    for (line, event) in text.lines().zip(&events) {
        assert_eq!(line, event.to_json_string());
    }
}

#[test]
fn traces_are_byte_identical_for_same_seed_and_any_thread_count() {
    let a = traced_run(7, 100, 1);
    let b = traced_run(7, 100, 1);
    assert_eq!(a, b, "same-seed traces must be byte-identical");
    let c = traced_run(7, 100, 4);
    assert_eq!(a, c, "threads=4 trace must equal threads=1");
}

#[test]
fn traces_contain_no_wall_clock_fields() {
    // The determinism contract: wall-clock is machine noise, so it must
    // never leak into the trace (cpu_ns is the profiler's wall field).
    let text = traced_run(9, 60, 1);
    assert!(!text.contains("cpu_ns"));
    assert!(!text.contains("wall"));
}

#[test]
fn run_report_round_trips_through_testkit_json() {
    let spec = SynthesisSpec::new("tele-report", 400, 420).with_seed(11);
    let mut design = synthesize(&spec).expect("synthesis succeeds");
    let cfg = config(150);
    let gp = GlobalPlacer::new(cfg.clone())
        .place(&mut design)
        .expect("placement succeeds");
    let lg = legalize(&mut design).expect("legalization succeeds");
    let dp = detailed_place(&mut design, &DpConfig::default());

    let report = RunReport {
        design: design.name().to_string(),
        cells: design.netlist().num_cells(),
        nets: design.netlist().num_nets(),
        config: cfg.echo(),
        threads: cfg.threads,
        gp: gp.gp_metrics(),
        lg: Some(LgMetrics {
            initial_hpwl: lg.initial_hpwl,
            final_hpwl: lg.final_hpwl,
            mean_displacement: lg.mean_displacement,
            max_displacement: lg.max_displacement,
            wall_seconds: lg.wall_seconds,
        }),
        dp: Some(DpMetrics {
            initial_hpwl: dp.initial_hpwl,
            final_hpwl: dp.final_hpwl,
            slides: dp.slides,
            reorders: dp.reorders,
            swaps: dp.swaps,
            wall_seconds: dp.wall_seconds,
        }),
        route: None,
        spectral: None,
        scaling: None,
        explore: None,
        trace_error: None,
    };

    let text = report.to_json_string();
    let back = RunReport::from_json_str(&text).expect("report parses");
    assert_eq!(back, report);
    assert_eq!(back.final_hpwl(), dp.final_hpwl);
    assert_eq!(back.gp.iterations, gp.iterations);
}

#[test]
fn comparator_passes_identical_runs_and_fails_injected_regressions() {
    let run = || {
        let spec = SynthesisSpec::new("tele-gate", 400, 420).with_seed(13);
        let mut design = synthesize(&spec).expect("synthesis succeeds");
        let cfg = config(120);
        let gp = GlobalPlacer::new(cfg.clone())
            .place(&mut design)
            .expect("placement succeeds");
        RunReport {
            design: design.name().to_string(),
            cells: design.netlist().num_cells(),
            nets: design.netlist().num_nets(),
            config: cfg.echo(),
            threads: cfg.threads,
            gp: gp.gp_metrics(),
            lg: None,
            dp: None,
            route: None,
            spectral: None,
            scaling: None,
            explore: None,
            trace_error: None,
        }
    };
    let baseline = run();
    let fresh = run();
    let cmp = compare_reports(&baseline, &fresh, &Tolerances::default());
    assert!(
        cmp.passed(),
        "identical deterministic runs must pass: {:?}",
        cmp.failures
    );

    let mut regressed = fresh.clone();
    regressed.gp.final_hpwl *= 1.10;
    let cmp = compare_reports(&baseline, &regressed, &Tolerances::default());
    assert!(!cmp.passed(), "a +10% HPWL regression must fail the gate");
}
