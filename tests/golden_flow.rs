//! Deterministic golden test of the full GP flow.
//!
//! Every stochastic input in the workspace is seeded through
//! `xplace-testkit`'s deterministic RNG, so a fixed-seed synthesis + global
//! placement must land on the same final HPWL and density overflow on every
//! machine and every run. The recorded values below are the output of this
//! exact flow; a drift beyond the tolerances means a change altered the
//! numeric behavior of the placer (intentionally or not) and the goldens
//! must be re-recorded consciously.

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};

const GOLDEN_SEED: u64 = 20_220_714;
const GOLDEN_CELLS: usize = 500;
const GOLDEN_NETS: usize = 525;
const GOLDEN_MAX_ITERS: usize = 400;

// Recorded from the flow above. HPWL tolerance is relative (the flow is
// deterministic, but a loose band keeps the test meaningful rather than
// bit-brittle across float-ordering changes); overflow is an absolute band.
const GOLDEN_HPWL: f64 = 15119.747284;
const GOLDEN_OVERFLOW: f64 = 0.227591;

#[test]
fn golden_gp_flow_matches_recorded_values() {
    let spec = SynthesisSpec::new("golden", GOLDEN_CELLS, GOLDEN_NETS).with_seed(GOLDEN_SEED);
    let mut design = synthesize(&spec).expect("synthesis succeeds");
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = GOLDEN_MAX_ITERS;
    let report = GlobalPlacer::new(cfg)
        .place(&mut design)
        .expect("placement succeeds");
    println!(
        "golden probe: hpwl = {:.6}, overflow = {:.6}, iters = {}",
        report.final_hpwl, report.final_overflow, report.iterations
    );
    assert!(
        (report.final_hpwl - GOLDEN_HPWL).abs() <= GOLDEN_HPWL * 1e-6,
        "HPWL drifted from golden: {} vs {GOLDEN_HPWL}",
        report.final_hpwl
    );
    assert!(
        (report.final_overflow - GOLDEN_OVERFLOW).abs() <= 1e-5,
        "overflow drifted from golden: {} vs {GOLDEN_OVERFLOW}",
        report.final_overflow
    );
}

#[test]
fn golden_flow_is_thread_count_invariant() {
    // The blocked kernel decompositions depend only on the design, so a
    // threads=4 run must reproduce the threads=1 run bit-for-bit — and both
    // must still match the pinned golden values.
    let run = |threads: usize| {
        let spec = SynthesisSpec::new("golden", GOLDEN_CELLS, GOLDEN_NETS).with_seed(GOLDEN_SEED);
        let mut design = synthesize(&spec).expect("synthesis succeeds");
        let mut cfg = XplaceConfig::xplace().with_threads(threads);
        cfg.schedule.max_iterations = GOLDEN_MAX_ITERS;
        let report = GlobalPlacer::new(cfg)
            .place(&mut design)
            .expect("placement succeeds");
        (
            report.final_hpwl,
            report.final_overflow,
            design.positions().to_vec(),
        )
    };
    let (h1, o1, p1) = run(1);
    let (h4, o4, p4) = run(4);
    assert_eq!(
        h1.to_bits(),
        h4.to_bits(),
        "HPWL must be bit-identical across thread counts: {h1} vs {h4}"
    );
    assert_eq!(
        o1.to_bits(),
        o4.to_bits(),
        "overflow must be bit-identical across thread counts: {o1} vs {o4}"
    );
    assert_eq!(p1.len(), p4.len());
    for (a, b) in p1.iter().zip(&p4) {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
    // And the threaded run still pins to the recorded goldens.
    assert!(
        (h4 - GOLDEN_HPWL).abs() <= GOLDEN_HPWL * 1e-6,
        "threaded HPWL drifted from golden: {h4} vs {GOLDEN_HPWL}"
    );
    assert!(
        (o4 - GOLDEN_OVERFLOW).abs() <= 1e-5,
        "threaded overflow drifted from golden: {o4} vs {GOLDEN_OVERFLOW}"
    );
}

#[test]
fn golden_flow_is_run_to_run_deterministic() {
    let run = || {
        let spec = SynthesisSpec::new("golden", GOLDEN_CELLS, GOLDEN_NETS).with_seed(GOLDEN_SEED);
        let mut design = synthesize(&spec).expect("synthesis succeeds");
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 120;
        let report = GlobalPlacer::new(cfg)
            .place(&mut design)
            .expect("placement succeeds");
        (
            report.final_hpwl,
            report.final_overflow,
            design.positions().to_vec(),
        )
    };
    let (h1, o1, p1) = run();
    let (h2, o2, p2) = run();
    assert_eq!(
        h1.to_bits(),
        h2.to_bits(),
        "HPWL must be bit-identical across runs"
    );
    assert_eq!(
        o1.to_bits(),
        o2.to_bits(),
        "overflow must be bit-identical across runs"
    );
    assert_eq!(p1.len(), p2.len());
    for (a, b) in p1.iter().zip(&p2) {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
}
