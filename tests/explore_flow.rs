//! End-to-end tests of population-based exploration (`--explore K`):
//! the determinism contract (byte-identical winner artifacts for any
//! pool width), the culling order (score, then member index), and the
//! `K = 1` degeneracy to a plain single-run trace.

use xplace::cli::parse_explore_args;
use xplace::core::{CheckpointOptions, GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::db::Design;
use xplace::sched::{run_population, PopulationOptions};
use xplace::telemetry::{FromJson, RunReport, ToJson, VecSink};

fn explore_design() -> Design {
    synthesize(&SynthesisSpec::new("explore", 300, 320).with_seed(7)).expect("synthesis succeeds")
}

fn explore_config() -> XplaceConfig {
    let mut config = XplaceConfig::xplace().with_seed(0xf10e);
    config.schedule.max_iterations = 60;
    config
}

#[test]
fn explore_four_is_byte_identical_across_thread_counts() {
    // The CLI contract under test: `xplace place --explore 4 --seed S`
    // produces the same winner trace and report at --threads 1 and 4.
    let design = explore_design();
    let config = explore_config();
    let mut options = PopulationOptions {
        members: 4,
        generations: 3,
        keep: 2,
        threads: 1,
    };
    let serial = run_population(&design, &config, &options).expect("population runs");
    options.threads = 4;
    let wide = run_population(&design, &config, &options).expect("population runs");

    assert_eq!(
        serial.trace, wide.trace,
        "winner trace must be byte-identical for any pool width"
    );
    assert_eq!(
        serial.report.to_json_string(),
        wide.report.to_json_string(),
        "winner report must be byte-identical for any pool width"
    );

    // The report round-trips exactly, so the recorded lineage (who
    // branched from whom, under which perturbation seed) is replayable
    // from the report alone.
    let rendered = serial.report.to_json_string();
    let back = RunReport::from_json_str(&rendered).expect("population report parses back");
    assert_eq!(back.to_json_string(), rendered);
    let explore = back.explore.expect("population report carries lineage");
    assert_eq!(explore.members, 4);
    assert_eq!(explore.keep, 2);
    assert_eq!(explore.generations.len(), 3);
    assert_eq!(explore.winner_lineage.len(), 3);
    assert_eq!(*explore.winner_lineage.last().unwrap(), explore.winner);
}

#[test]
fn culling_ranks_by_score_then_member_index() {
    // At every barrier, survivors are the `keep` best under the
    // documented deterministic order: ascending score, ties to the
    // lower member index. The recorded generation data must be exactly
    // consistent with that rule — `best` is the order's head and the
    // culled set is its tail.
    let design = explore_design();
    let config = explore_config();
    let options = PopulationOptions {
        members: 6,
        generations: 3,
        keep: 3,
        threads: 4,
    };
    let outcome = run_population(&design, &config, &options).expect("population runs");
    let explore = outcome.report.explore.as_ref().expect("lineage recorded");
    assert_eq!(explore.generations.len(), options.generations);
    for (g, generation) in explore.generations.iter().enumerate() {
        let members = &generation.members;
        assert_eq!(members.len(), options.members);
        let mut order: Vec<usize> = (0..options.members).collect();
        order.sort_by(|&a, &b| {
            members[a]
                .score
                .total_cmp(&members[b].score)
                .then(a.cmp(&b))
        });
        assert_eq!(
            generation.best, order[0],
            "generation {g}: best must head the (score, index) order"
        );
        let culled: Vec<usize> = members
            .iter()
            .filter(|m| m.culled)
            .map(|m| m.member)
            .collect();
        let last = g + 1 == options.generations;
        let mut expected: Vec<usize> = if last {
            Vec::new()
        } else {
            order[options.keep..].to_vec()
        };
        expected.sort_unstable();
        assert_eq!(
            culled, expected,
            "generation {g}: culled set must be the (score, index) order's tail"
        );
    }
    // Winner identity follows the same rule on the final generation.
    assert_eq!(explore.winner, explore.generations.last().unwrap().best);
}

#[test]
fn explore_one_degenerates_to_the_single_run_trace() {
    // `--explore 1` never culls, so its pause/resume segments must
    // stitch into exactly the trace of one uninterrupted run.
    let design = explore_design();
    let config = explore_config();
    let options = PopulationOptions {
        members: 1,
        generations: 4,
        keep: 1,
        threads: 2,
    };
    let outcome = run_population(&design, &config, &options).expect("population runs");

    let mut reference_design = design.clone();
    let mut member_config = config.clone();
    member_config.threads = 1; // members always run at kernel width 1
    let mut sink = VecSink::new();
    let reference = GlobalPlacer::new(member_config)
        .place_traced_opts(&mut reference_design, &mut sink, CheckpointOptions::none())
        .expect("reference run places");

    assert_eq!(
        outcome.trace,
        sink.to_jsonl(),
        "K=1 must stitch to the uninterrupted trace"
    );
    assert_eq!(
        outcome.report.gp.modeled_ns,
        reference.gp_metrics().modeled_ns,
        "K=1 modeled cost equals the plain run's"
    );
    let explore = outcome.report.explore.as_ref().unwrap();
    assert_eq!(explore.winner, 0);
    assert_eq!(explore.winner_lineage, vec![0; 4]);
    assert!(explore.generations.iter().all(|g| g
        .members
        .iter()
        .all(|m| !m.culled && m.branched_from.is_none())));
}

#[test]
fn cli_explore_flags_map_onto_population_options() {
    // `--explore 4` with no satellite flags takes the documented
    // defaults (4 generations, keep = K/2), matching
    // `PopulationOptions::for_members`.
    let args: Vec<String> = ["--explore", "4"].iter().map(|s| s.to_string()).collect();
    let parsed = parse_explore_args(&args)
        .unwrap()
        .expect("explore requested");
    let defaults = PopulationOptions::for_members(4);
    assert_eq!(parsed.members, defaults.members);
    assert_eq!(parsed.generations, defaults.generations);
    assert_eq!(parsed.keep, defaults.keep);

    let args: Vec<String> = [
        "--explore",
        "8",
        "--explore-generations",
        "5",
        "--explore-keep",
        "3",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let parsed = parse_explore_args(&args).unwrap().unwrap();
    assert_eq!((parsed.members, parsed.generations, parsed.keep), (8, 5, 3));
}
