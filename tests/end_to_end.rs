//! End-to-end integration tests: the full GP -> LG -> DP -> evaluation
//! pipeline across crates.

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::legal::{check_legality, detailed_place, legalize, DpConfig};
use xplace::route::{estimate_congestion, RouteConfig};

fn place_design(cells: usize, seed: u64, config: XplaceConfig) -> xplace::db::Design {
    let spec = SynthesisSpec::new("e2e", cells, cells + cells / 20).with_seed(seed);
    let mut design = synthesize(&spec).expect("synthesis succeeds");
    GlobalPlacer::new(config)
        .place(&mut design)
        .expect("placement succeeds");
    design
}

#[test]
fn full_flow_produces_a_legal_placement_with_low_overflow() {
    let spec = SynthesisSpec::new("flow", 800, 840)
        .with_seed(3)
        .with_macro_count(3);
    let mut design = synthesize(&spec).expect("synthesis succeeds");
    let gp = GlobalPlacer::new(XplaceConfig::xplace())
        .place(&mut design)
        .expect("placement succeeds");
    assert!(gp.final_overflow < 0.2, "GP overflow {}", gp.final_overflow);

    let lg = legalize(&mut design).expect("legalization succeeds");
    check_legality(&design).expect("legal after LG");
    // Legalization of a converged GP result should be gentle.
    assert!(
        lg.final_hpwl < gp.final_hpwl * 1.3,
        "LG blew HPWL up: {} -> {}",
        gp.final_hpwl,
        lg.final_hpwl
    );

    let dp = detailed_place(&mut design, &DpConfig::default());
    check_legality(&design).expect("legal after DP");
    assert!(
        dp.final_hpwl <= lg.final_hpwl + 1e-9,
        "DP must not worsen HPWL"
    );
}

#[test]
fn xplace_beats_baseline_gp_time_with_comparable_hpwl() {
    let mut cfg_x = XplaceConfig::xplace();
    cfg_x.schedule.max_iterations = 800;
    let mut cfg_d = XplaceConfig::dreamplace_like();
    cfg_d.schedule.max_iterations = 800;

    let spec = SynthesisSpec::new("cmp", 600, 640).with_seed(11);
    let mut dx = synthesize(&spec).expect("synthesis succeeds");
    let mut dd = synthesize(&spec).expect("synthesis succeeds");
    let rx = GlobalPlacer::new(cfg_x).place(&mut dx).expect("xplace run");
    let rd = GlobalPlacer::new(cfg_d)
        .place(&mut dd)
        .expect("baseline run");

    // Speed: Xplace's modeled GP time per iteration must be well below the
    // baseline's (the paper reports ~3x per-iteration).
    let speedup = rd.modeled_ms_per_iter() / rx.modeled_ms_per_iter();
    assert!(speedup > 1.5, "per-iteration speedup only {speedup:.2}x");

    // Quality: HPWL within 10% of each other (the paper: within a per-mil
    // at full convergence on the real contest sizes).
    let ratio = rx.final_hpwl / rd.final_hpwl;
    assert!((0.9..=1.1).contains(&ratio), "HPWL ratio {ratio}");
}

#[test]
fn congestion_estimation_runs_on_placed_designs() {
    let design = place_design(500, 17, XplaceConfig::xplace());
    let map = estimate_congestion(&design, &RouteConfig::default());
    let top5 = map.top_overflow(0.05);
    assert!(top5.is_finite() && top5 > 0.0);
    assert!(map.max_utilization() >= top5);
}

#[test]
fn placement_improves_congestion_over_the_clustered_start() {
    let spec = SynthesisSpec::new("cong", 500, 520).with_seed(23);
    let clustered = synthesize(&spec).expect("synthesis succeeds");
    let cfg = RouteConfig::default();
    let before = estimate_congestion(&clustered, &cfg).top_overflow(0.05);

    let mut placed = synthesize(&spec).expect("synthesis succeeds");
    GlobalPlacer::new(XplaceConfig::xplace())
        .place(&mut placed)
        .expect("placement");
    let after = estimate_congestion(&placed, &cfg).top_overflow(0.05);
    assert!(
        after < before * 0.7,
        "placement should reduce top5 congestion: {before:.1} -> {after:.1}"
    );
}

#[test]
fn operator_configurations_agree_on_final_quality() {
    // All Xplace operator configurations run the same math; starting from
    // the same instance they must converge to comparable HPWL.
    let mut reference = None;
    for (r, c, e, s) in [
        (true, true, true, true),
        (false, false, false, false),
        (true, true, false, false),
    ] {
        let mut cfg = XplaceConfig::ablation(r, c, e, s);
        cfg.schedule.max_iterations = 600;
        let spec = SynthesisSpec::new("agree", 400, 420).with_seed(31);
        let mut design = synthesize(&spec).expect("synthesis succeeds");
        let report = GlobalPlacer::new(cfg)
            .place(&mut design)
            .expect("placement");
        let hpwl = report.final_hpwl;
        match reference {
            None => reference = Some(hpwl),
            Some(reference) => {
                let ratio = hpwl / reference;
                assert!(
                    (0.85..=1.15).contains(&ratio),
                    "config ({r},{c},{e},{s}) HPWL ratio {ratio}"
                );
            }
        }
    }
}
