//! End-to-end batch scheduler tests: determinism against serial runs,
//! failure isolation, and the `xplace batch` CLI contract.
//!
//! The core claim under test is the scheduler's determinism contract: a
//! batch of N designs must produce, for every job, metrics and telemetry
//! traces **byte-identical** to what N independent serial `place` runs
//! of the same designs would produce — for any thread count.

use std::path::PathBuf;
use xplace::core::GlobalPlacer;
use xplace::db::DesignCache;
use xplace::legal::{detailed_place, legalize, DpConfig};
use xplace::sched::{run_batch, BatchManifest};
use xplace::telemetry::{FromJson, JobStatus, RunReport, VecSink};

const MAX_ITERS: usize = 120;

fn synth_manifest() -> BatchManifest {
    let jobs: Vec<String> = [(300usize, 320usize, 3u64), (260, 280, 4), (340, 360, 5)]
        .iter()
        .enumerate()
        .map(|(i, (cells, nets, seed))| {
            format!(
                r#"{{"name": "job{i}", "synth": {{"cells": {cells}, "nets": {nets}, "seed": {seed}}}, "max_iters": {MAX_ITERS}, "seed": {}}}"#,
                seed + 100
            )
        })
        .collect();
    BatchManifest::parse(&format!(r#"{{"jobs": [{}]}}"#, jobs.join(", ")))
        .expect("test manifest parses")
}

/// The serial reference: the exact flow `xplace place --trace` runs,
/// written out independently of `run_job` so the test checks the
/// scheduler against the flow, not against itself.
fn serial_reference(manifest: &BatchManifest) -> Vec<(f64, f64, String)> {
    manifest
        .jobs
        .iter()
        .map(|job| {
            let spec = job.source.synth_spec().expect("synth job");
            let mut design = xplace::db::synthesis::synthesize(&spec).expect("synthesis");
            let config = job.config(1);
            let mut sink = VecSink::new();
            let gp = GlobalPlacer::new(config)
                .place_traced(&mut design, &mut sink)
                .expect("serial GP");
            legalize(&mut design).expect("serial LG");
            let dp = detailed_place(&mut design, &DpConfig::default());
            (dp.final_hpwl, gp.final_overflow, sink.to_jsonl())
        })
        .collect()
}

#[test]
fn batch_of_three_matches_three_serial_runs_bytewise() {
    let manifest = synth_manifest();
    let serial = serial_reference(&manifest);
    for threads in [1, 4] {
        let batch = run_batch(&manifest, threads);
        assert!(
            batch.report.all_completed(),
            "batch failed at {threads} threads: {:?}",
            batch.report.jobs
        );
        for (i, (hpwl, overflow, trace)) in serial.iter().enumerate() {
            let report = batch.report.jobs[i].report.as_ref().unwrap();
            assert_eq!(
                report.dp.as_ref().unwrap().final_hpwl.to_bits(),
                hpwl.to_bits(),
                "job {i}: HPWL diverged from serial at {threads} threads"
            );
            assert_eq!(
                report.gp.final_overflow.to_bits(),
                overflow.to_bits(),
                "job {i}: overflow diverged from serial at {threads} threads"
            );
            assert_eq!(
                batch.traces[i].as_deref(),
                Some(trace.as_str()),
                "job {i}: trace bytes diverged from serial at {threads} threads"
            );
        }
    }
}

#[test]
fn injected_failure_is_isolated_and_reported() {
    let broken = format!(
        r#"{{"jobs": [
            {{"name": "ok1", "synth": {{"cells": 260, "nets": 280, "seed": 4}}, "max_iters": {MAX_ITERS}, "seed": 104}},
            {{"name": "doomed", "synth": {{"cells": 300, "nets": 320, "seed": 3}}, "max_iters": {MAX_ITERS}, "seed": 103}},
            {{"name": "ok2", "synth": {{"cells": 340, "nets": 360, "seed": 5}}, "max_iters": {MAX_ITERS}, "seed": 105}}
        ],
        "faults": [{{"target": "doomed", "kind": "gp_panic", "iteration": 7}}]}}"#
    );
    let manifest = BatchManifest::parse(&broken).expect("manifest parses");
    let batch = run_batch(&manifest, 4);

    assert_eq!(batch.report.total(), 3);
    assert_eq!(batch.report.failed(), 1, "exactly one job must fail");
    let doomed = batch.report.job("doomed").unwrap();
    assert_eq!(doomed.status, JobStatus::Failed);
    assert!(
        doomed
            .error
            .as_deref()
            .unwrap()
            .contains("injected failure at GP iteration 7"),
        "{:?}",
        doomed.error
    );

    // Siblings are bit-identical to a batch with no faulty job at all.
    let healthy = run_batch(&synth_manifest(), 4);
    for (name, healthy_idx) in [("ok1", 1), ("ok2", 2)] {
        let sibling = batch.report.job(name).unwrap();
        assert_eq!(sibling.status, JobStatus::Completed, "{name}");
        let got = sibling.report.as_ref().unwrap();
        let want = healthy.report.jobs[healthy_idx].report.as_ref().unwrap();
        assert_eq!(
            got.gp.final_hpwl.to_bits(),
            want.gp.final_hpwl.to_bits(),
            "{name}: a failing sibling must not perturb metrics"
        );
    }
}

// --- CLI-level tests (drive the real binary) ------------------------------

fn xplace_bin() -> &'static str {
    env!("CARGO_BIN_EXE_xplace")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xplace-batch-flow-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn batch_cli_matches_place_cli_trace_bytes() {
    let dir = temp_dir("cli");
    // Two bookshelf designs on disk, placed both ways.
    let mut aux_paths = Vec::new();
    for seed in [3u64, 4] {
        let spec =
            xplace::db::synthesis::SynthesisSpec::new(format!("d{seed}"), 250, 270).with_seed(seed);
        let design = xplace::db::synthesis::synthesize(&spec).expect("synthesis");
        let subdir = dir.join(format!("d{seed}"));
        std::fs::create_dir_all(&subdir).unwrap();
        aux_paths.push(xplace::db::bookshelf::write_design(&design, &subdir).expect("write aux"));
    }

    let manifest_path = dir.join("suite.json");
    let manifest_text = format!(
        r#"{{"jobs": [
            {{"name": "d3", "aux": "{}", "max_iters": 90, "seed": 11}},
            {{"name": "d4", "aux": "{}", "max_iters": 90, "seed": 12}}
        ]}}"#,
        aux_paths[0].display(),
        aux_paths[1].display()
    );
    std::fs::write(&manifest_path, manifest_text).unwrap();

    let trace_dir = dir.join("traces");
    let batch_report_path = dir.join("batch.json");
    let status = std::process::Command::new(xplace_bin())
        .args([
            "batch",
            manifest_path.to_str().unwrap(),
            "--threads",
            "2",
            "--trace-dir",
            trace_dir.to_str().unwrap(),
            "--report",
            batch_report_path.to_str().unwrap(),
        ])
        .status()
        .expect("spawn xplace batch");
    assert!(status.success(), "batch CLI must exit 0 on success");

    for (job, (aux, seed)) in ["d3", "d4"].iter().zip(aux_paths.iter().zip([11usize, 12])) {
        let serial_trace = dir.join(format!("{job}.serial.jsonl"));
        let serial_report = dir.join(format!("{job}.serial.json"));
        let status = std::process::Command::new(xplace_bin())
            .args([
                "place",
                aux.to_str().unwrap(),
                "--max-iters",
                "90",
                "--seed",
                &seed.to_string(),
                "--threads",
                "2",
                "--trace",
                serial_trace.to_str().unwrap(),
                "--report",
                serial_report.to_str().unwrap(),
                "-o",
                dir.join(format!("{job}.pl")).to_str().unwrap(),
            ])
            .status()
            .expect("spawn xplace place");
        assert!(status.success(), "place CLI must exit 0");

        let batch_trace = std::fs::read(trace_dir.join(format!("{job}.jsonl"))).unwrap();
        let serial_trace = std::fs::read(&serial_trace).unwrap();
        assert_eq!(
            batch_trace, serial_trace,
            "{job}: batch trace must be byte-identical to the serial place trace"
        );

        let serial: RunReport =
            RunReport::from_json_str(&std::fs::read_to_string(&serial_report).unwrap()).unwrap();
        let batch_text = std::fs::read_to_string(&batch_report_path).unwrap();
        let batch: xplace::telemetry::BatchReport =
            xplace::telemetry::BatchReport::from_json_str(&batch_text).unwrap();
        let job_report = batch.job(job).unwrap().report.as_ref().unwrap().clone();
        assert_eq!(
            job_report.final_hpwl().to_bits(),
            serial.final_hpwl().to_bits(),
            "{job}: batch report HPWL must equal the serial report's"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_cli_exits_nonzero_when_a_job_fails() {
    let dir = temp_dir("fail");
    let manifest_path = dir.join("fail.json");
    std::fs::write(
        &manifest_path,
        r#"{"jobs": [
            {"name": "fine",  "synth": {"cells": 200, "nets": 210, "seed": 3}, "max_iters": 60},
            {"name": "crash", "synth": {"cells": 200, "nets": 210, "seed": 3}, "max_iters": 60}
        ],
        "faults": [{"target": "crash", "kind": "gp_panic", "iteration": 4}]}"#,
    )
    .unwrap();
    let report_path = dir.join("batch.json");
    let output = std::process::Command::new(xplace_bin())
        .args([
            "batch",
            manifest_path.to_str().unwrap(),
            "--threads",
            "2",
            "--report",
            report_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn xplace batch");
    assert_eq!(
        output.status.code(),
        Some(1),
        "a failed job must make the process exit 1"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("1 of 2 job(s) failed"),
        "stderr must summarize the failure"
    );
    // The report is still written, with exactly one failed record.
    let report = xplace::telemetry::BatchReport::from_json_str(
        &std::fs::read_to_string(&report_path).unwrap(),
    )
    .unwrap();
    assert_eq!(report.failed(), 1);
    assert_eq!(report.job("fine").unwrap().status, JobStatus::Completed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_cli_rejects_bad_manifests() {
    let dir = temp_dir("badmanifest");
    let manifest_path = dir.join("dup.json");
    std::fs::write(
        &manifest_path,
        r#"{"jobs": [{"name": "a", "synth": {"cells": 10}},
                     {"name": "a", "synth": {"cells": 20}}]}"#,
    )
    .unwrap();
    let output = std::process::Command::new(xplace_bin())
        .args(["batch", manifest_path.to_str().unwrap()])
        .output()
        .expect("spawn xplace batch");
    assert_eq!(output.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("duplicate job name"),
        "stderr must name the manifest problem"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shared_cache_does_not_change_results() {
    // Two jobs on the same design share one cache entry; their results
    // must match jobs run with fresh caches.
    let manifest = BatchManifest::parse(
        r#"{"jobs": [
            {"name": "x", "synth": {"cells": 240, "nets": 260, "seed": 6}, "max_iters": 80, "seed": 1},
            {"name": "y", "synth": {"cells": 240, "nets": 260, "seed": 6}, "max_iters": 80, "seed": 2}
        ]}"#,
    )
    .unwrap();
    let batch = run_batch(&manifest, 2);
    assert_eq!(batch.cache_stats, (1, 1), "second job must hit the cache");
    for (i, job) in manifest.jobs.iter().enumerate() {
        let fresh = xplace::sched::run_job(job, 1, &DesignCache::new()).unwrap();
        assert_eq!(
            batch.report.jobs[i]
                .report
                .as_ref()
                .unwrap()
                .final_hpwl()
                .to_bits(),
            fresh.report.final_hpwl().to_bits(),
            "job {i}: cached design must place identically to a fresh load"
        );
    }
}
