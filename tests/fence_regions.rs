//! Integration tests of the fence-region extension (the constraint the
//! paper defers to future work, implemented here through the framework's
//! extension points).

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::db::{CellId, FenceRegion, Rect};
use xplace::legal::{check_legality, detailed_place, legalize, DpConfig, LegalError};

fn fenced_design(seed: u64) -> xplace::db::Design {
    synthesize(
        &SynthesisSpec::new("fenced", 500, 520)
            .with_seed(seed)
            .with_fences(3),
    )
    .expect("synthesis with fences")
}

#[test]
fn synthesized_fences_are_valid_and_populated() {
    let d = fenced_design(3);
    assert_eq!(d.fences().len(), 3);
    for fence in d.fences() {
        assert!(!fence.members().is_empty());
        assert!(d.region().contains_rect(&fence.bounding_box()));
    }
    // Membership lookup agrees with the fence lists.
    let f0 = &d.fences()[0];
    assert_eq!(d.fence_of(f0.members()[0]), Some(0));
}

#[test]
fn gp_keeps_members_inside_their_fences() {
    let mut d = fenced_design(5);
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 400;
    GlobalPlacer::new(cfg).place(&mut d).expect("placement");
    for (fi, fence) in d.fences().iter().enumerate() {
        let bb = fence.bounding_box();
        for &m in fence.members() {
            let p = d.position(m);
            assert!(
                p.x >= bb.lx - 1e-6
                    && p.x <= bb.ux + 1e-6
                    && p.y >= bb.ly - 1e-6
                    && p.y <= bb.uy + 1e-6,
                "fence {fi} member {m} escaped to {p} (fence bb {bb})"
            );
        }
    }
}

#[test]
fn full_flow_with_fences_is_legal_and_contained() {
    let mut d = fenced_design(7);
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 500;
    GlobalPlacer::new(cfg).place(&mut d).expect("placement");
    legalize(&mut d).expect("legalization");
    check_legality(&d).expect("legal incl. fence containment");
    let dp = detailed_place(&mut d, &DpConfig::default());
    check_legality(&d).expect("still legal after DP");
    assert!(dp.final_hpwl <= dp.initial_hpwl + 1e-9);
}

#[test]
fn checker_reports_fence_escapes() {
    let mut d = fenced_design(9);
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 300;
    GlobalPlacer::new(cfg).place(&mut d).expect("placement");
    legalize(&mut d).expect("legalization");
    check_legality(&d).expect("legal before tampering");
    // Teleport one fenced cell onto the (legal, aligned) position of an
    // unfenced cell far from the fence.
    let victim = d.fences()[0].members()[0];
    let nl = d.netlist();
    let donor = nl
        .cell_ids()
        .find(|&c| {
            nl.cell(c).is_movable()
                && d.fence_of(c).is_none()
                && !d.fences()[0].bounding_box().contains(d.position(c))
        })
        .expect("an unfenced cell exists outside the fence");
    let mut pos = d.positions().to_vec();
    pos[victim.index()] = d.position(donor);
    d.set_positions(pos);
    match check_legality(&d) {
        Err(LegalError::OutOfFence { .. }) | Err(LegalError::Overlap { .. }) => {}
        other => panic!("expected a fence/overlap violation, got {other:?}"),
    }
}

#[test]
fn hand_built_fences_constrain_the_placer() {
    // Build an unfenced design, then fence its first 20 cells into the
    // lower-left quadrant and check GP honours it.
    let mut d =
        synthesize(&SynthesisSpec::new("handf", 300, 320).with_seed(11)).expect("synthesis");
    let r = d.region();
    let quad = Rect::new(r.lx, r.ly, r.lx + r.width() * 0.4, r.ly + r.height() * 0.4);
    let members: Vec<CellId> = (0..20).map(CellId).collect();
    let fence = FenceRegion::new("quad", vec![quad], members.clone()).expect("fence");
    d.set_fences(vec![fence]).expect("valid fence");
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 400;
    GlobalPlacer::new(cfg).place(&mut d).expect("placement");
    for &m in &members {
        let p = d.position(m);
        assert!(quad.contains(p) || (p.x <= quad.ux + 1e-6 && p.y <= quad.uy + 1e-6));
    }
}
