//! Cross-crate integration tests: parser round-trips through the full
//! model pipeline, neural guidance inside the placer, device accounting
//! across a whole run.

use xplace::core::{sigma_blend, GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::db::{bookshelf, def};
use xplace::nn::{train, DataConfig, Fno, FnoConfig, FnoGuidance, TrainConfig};
use xplace::ops::PlacementModel;

#[test]
fn bookshelf_round_trip_preserves_placement_model_semantics() {
    let design = synthesize(
        &SynthesisSpec::new("bsrt", 200, 210)
            .with_seed(3)
            .with_macro_count(2),
    )
    .expect("synthesis succeeds");
    let dir = std::env::temp_dir().join(format!("xplace_it_bs_{}", std::process::id()));
    let aux = bookshelf::write_design(&design, &dir).expect("bookshelf write");
    let back = bookshelf::read_aux(&aux, design.target_density()).expect("bookshelf read");

    // Building the operator model from both designs yields the same
    // totals (areas, pins, HPWL), i.e. the formats carry everything the
    // placer needs.
    let m1 = PlacementModel::from_design(&design).expect("model from original");
    let m2 = PlacementModel::from_design(&back).expect("model from round trip");
    assert_eq!(m1.num_movable(), m2.num_movable());
    assert_eq!(m1.num_pins(), m2.num_pins());
    assert!((m1.movable_area() - m2.movable_area()).abs() < 1e-9);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn def_export_can_be_placed() {
    let design =
        synthesize(&SynthesisSpec::new("defp", 150, 160).with_seed(5)).expect("synthesis succeeds");
    let lef = def::write_lef(&design);
    let def_text = def::write_def(&design);
    let lib = def::parse_lef(&lef).expect("lef parses");
    let mut back = def::parse_def(&def_text, &lib, 0.9).expect("def parses");
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 100;
    let report = GlobalPlacer::new(cfg)
        .place(&mut back)
        .expect("placement succeeds");
    assert!(report.iterations > 0);
    assert!(report.final_hpwl.is_finite());
}

#[test]
fn neural_guidance_runs_inside_the_placer_and_preserves_quality() {
    // A briefly trained FNO plugged into the placer must not break
    // convergence (the paper's claim is a ~1 per-mil improvement; here we
    // assert the guided run stays within 10% and converges).
    let mut fno = Fno::new(&FnoConfig::tiny(), 5).expect("valid config");
    let tc = TrainConfig {
        steps: 160,
        batch: 2,
        lr: 4e-3,
        data: DataConfig {
            grid: 16,
            blobs: 3,
            rects: 1,
            ..Default::default()
        },
        seed: 400,
    };
    train(&mut fno, &tc).expect("training succeeds");

    let spec = SynthesisSpec::new("nnit", 400, 420).with_seed(9);
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 1000;

    let mut plain = synthesize(&spec).expect("synthesis");
    let rp = GlobalPlacer::new(cfg.clone())
        .place(&mut plain)
        .expect("plain run");

    let mut guided = synthesize(&spec).expect("synthesis");
    let rg = GlobalPlacer::new(cfg)
        .with_guidance(Box::new(FnoGuidance::new(fno)))
        .place(&mut guided)
        .expect("guided run");

    assert!(
        rg.final_overflow < 0.25,
        "guided overflow {}",
        rg.final_overflow
    );
    let ratio = rg.final_hpwl / rp.final_hpwl;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "guided/plain HPWL ratio {ratio}"
    );
    // The guidance only acts while sigma(omega) is non-negligible.
    assert!(sigma_blend(0.0) > 0.9 && sigma_blend(0.9) < 1e-3);
}

#[test]
fn device_accounting_is_consistent_across_a_run() {
    let spec = SynthesisSpec::new("acct", 300, 320).with_seed(13);
    let mut design = synthesize(&spec).expect("synthesis");
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 60;
    let report = GlobalPlacer::new(cfg)
        .place(&mut design)
        .expect("placement");
    // The per-iteration records must sum to (almost) the run totals.
    let rec_ns: u64 = report.recorder.records().iter().map(|r| r.modeled_ns).sum();
    let rec_launches: u64 = report.recorder.records().iter().map(|r| r.launches).sum();
    assert!(rec_ns <= report.profile.modeled_ns());
    assert!(rec_launches <= report.profile.launches);
    // The optimizer runs outside the recorded evaluate scope, so totals
    // are strictly larger but in the same ballpark.
    assert!(report.profile.launches < rec_launches + 10 * report.iterations as u64);
}

#[test]
fn skipped_iterations_are_visibly_cheaper_in_the_records() {
    let spec = SynthesisSpec::new("skiprec", 500, 520).with_seed(15);
    let mut design = synthesize(&spec).expect("synthesis");
    let mut cfg = XplaceConfig::xplace();
    cfg.schedule.max_iterations = 60;
    let report = GlobalPlacer::new(cfg)
        .place(&mut design)
        .expect("placement");
    let records = report.recorder.records();
    let skipped: Vec<_> = records.iter().filter(|r| r.density_skipped).collect();
    let full: Vec<_> = records.iter().filter(|r| !r.density_skipped).collect();
    assert!(!skipped.is_empty() && !full.is_empty());
    let avg = |rs: &[&xplace::core::IterationRecord]| {
        rs.iter().map(|r| r.modeled_ns as f64).sum::<f64>() / rs.len() as f64
    };
    assert!(
        avg(&skipped) < avg(&full) * 0.8,
        "skipped iterations should be cheaper: {} vs {}",
        avg(&skipped),
        avg(&full)
    );
}
