//! # xplace
//!
//! A pure-Rust reproduction of **Xplace** (Liu, Fu, Wong, Young — *"Xplace:
//! An Extremely Fast and Extensible Global Placement Framework"*, DAC 2022):
//! an ePlace-style analytical global placer whose per-iteration operator
//! stream is optimized at the operator level, together with every substrate
//! the paper depends on — built from scratch.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`parallel`] | `xplace-parallel` | persistent deterministic worker pool behind every CPU kernel body |
//! | [`db`] | `xplace-db` | netlist/design model, Bookshelf & DEF/LEF parsers, ISPD-like synthetic suites |
//! | [`fft`] | `xplace-fft` | FFT/DCT family and the electrostatic (Poisson) solver |
//! | [`device`] | `xplace-device` | the GPU execution model (launch accounting, autograd tape, profiler) |
//! | [`ops`] | `xplace-ops` | wirelength/density/preconditioner operators, fused and split |
//! | [`core`] | `xplace-core` | the placer: gradient engine, Nesterov, scheduler, recorder |
//! | [`telemetry`] | `xplace-telemetry` | typed event traces, run reports, and the regression comparator |
//! | [`sched`] | `xplace-sched` | batch scheduler: concurrent multi-design runs with failure isolation |
//! | [`serve`] | `xplace-serve` | placement-as-a-service: std-only HTTP daemon with fair admission and streamed telemetry |
//! | [`nn`] | `xplace-nn` | the Fourier neural operator and training loop (Xplace-NN) |
//! | [`legal`] | `xplace-legal` | Tetris/Abacus legalization and detailed placement |
//! | [`route`] | `xplace-route` | RUDY congestion estimation and the top5-overflow metric |
//!
//! ## Quickstart
//!
//! ```
//! use xplace::core::{GlobalPlacer, XplaceConfig};
//! use xplace::db::synthesis::{synthesize, SynthesisSpec};
//! use xplace::legal::{detailed_place, legalize, DpConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Get a design (synthetic here; Bookshelf/DEF parsers in xplace::db).
//! let mut design = synthesize(&SynthesisSpec::new("demo", 400, 420).with_seed(1))?;
//!
//! // 2. Global placement.
//! let mut config = XplaceConfig::xplace();
//! config.schedule.max_iterations = 80; // keep the doc test fast
//! let gp = GlobalPlacer::new(config).place(&mut design)?;
//! assert!(gp.final_overflow < gp.initial_overflow);
//!
//! // 3. Legalize + detailed placement.
//! legalize(&mut design)?;
//! let dp = detailed_place(&mut design, &DpConfig::default());
//! assert!(dp.final_hpwl <= dp.initial_hpwl);
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! paper-to-module map, and `EXPERIMENTS.md` for the reproduced tables.

#![warn(missing_docs)]

pub mod cli;
pub mod flow;

pub use xplace_core as core;
pub use xplace_db as db;
pub use xplace_device as device;
pub use xplace_fft as fft;
pub use xplace_legal as legal;
pub use xplace_nn as nn;
pub use xplace_ops as ops;
pub use xplace_parallel as parallel;
pub use xplace_route as route;
pub use xplace_sched as sched;
pub use xplace_serve as serve;
pub use xplace_telemetry as telemetry;
