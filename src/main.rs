//! The `xplace` command-line placer.
//!
//! ```text
//! xplace place  <design.aux> [-o out.pl] [--density 0.9] [--baseline] [--max-iters N]
//! xplace synth  <name> <cells> [--out dir] [--seed N] [--macros N]
//! xplace stats  <design.aux>
//! xplace plot   <design.aux> [-o out.svg] [--nets N]
//! ```
//!
//! `place` reads a Bookshelf benchmark, runs global placement +
//! legalization + detailed placement, reports the metrics the paper's
//! tables report, and writes the placed `.pl`. `synth` generates a
//! synthetic benchmark in Bookshelf format. `stats` prints Table-1-style
//! statistics.

use std::path::{Path, PathBuf};
use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::db::{bookshelf, DesignStats};
use xplace::legal::{check_legality, detailed_place, legalize, DpConfig};
use xplace::route::{estimate_congestion, RouteConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  xplace place <design.aux> [-o out.pl] [--density D] [--baseline] \
         [--max-iters N] [--seed N] [--threads N]\n  xplace synth <name> <cells> [--out DIR] \
         [--seed N] [--macros N]\n  xplace stats <design.aux> [--density D]\n  xplace plot \
         <design.aux> [-o out.svg] [--nets N]"
    );
    std::process::exit(2)
}

/// Returns the value following `flag`, `Ok(None)` when the flag is absent,
/// or an error when the flag is present without a value.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("missing value for {flag}")),
        },
    }
}

/// Parses the value of a numeric `flag`, falling back to `default` only when
/// the flag is absent; a present-but-unparseable value is a hard error, not
/// a silent fallback.
fn parse_flag<T>(args: &[String], flag: &str, default: T) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| format!("invalid value '{v}' for {flag}: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("place") => cmd_place(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("plot") => cmd_plot(&args[1..]),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_place(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let aux = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .unwrap_or_else(|| usage());
    let density: f64 = parse_flag(args, "--density", 0.9)?;
    let out: PathBuf = flag_value(args, "-o")?
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(aux).with_extension("placed.pl"));
    let mut design = bookshelf::read_aux(Path::new(aux), density)?;
    println!("loaded {}", DesignStats::of(&design));

    let mut config = if args.iter().any(|a| a == "--baseline") {
        XplaceConfig::dreamplace_like()
    } else {
        XplaceConfig::xplace()
    };
    config.schedule.max_iterations = parse_flag(args, "--max-iters", 1500)?;
    config.seed = parse_flag(args, "--seed", 0x5eed)?;
    config.threads = parse_flag(args, "--threads", xplace::parallel::available_threads())?;
    if config.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    println!("threads: {} (deterministic for any count)", config.threads);

    let gp = GlobalPlacer::new(config).place(&mut design)?;
    println!(
        "GP: {} iterations, overflow {:.3} -> {:.3}, HPWL {:.0} -> {:.0}, \
         modeled GPU {:.3}s ({:.3} ms/iter), wall {:.2}s",
        gp.iterations,
        gp.initial_overflow,
        gp.final_overflow,
        gp.initial_hpwl,
        gp.final_hpwl,
        gp.modeled_gp_seconds(),
        gp.modeled_ms_per_iter(),
        gp.wall_seconds
    );
    let lg = legalize(&mut design)?;
    println!(
        "LG: HPWL {:.0} -> {:.0}, mean displacement {:.2} ({:.2}s)",
        lg.initial_hpwl, lg.final_hpwl, lg.mean_displacement, lg.wall_seconds
    );
    let dp = detailed_place(&mut design, &DpConfig::default());
    println!(
        "DP: HPWL {:.0} -> {:.0} ({} slides, {} reorders, {} swaps, {:.2}s)",
        dp.initial_hpwl, dp.final_hpwl, dp.slides, dp.reorders, dp.swaps, dp.wall_seconds
    );
    check_legality(&design)?;
    let congestion = estimate_congestion(&design, &RouteConfig::default());
    println!(
        "routability: top5 overflow {:.2}, max utilization {:.2}",
        congestion.top_overflow(0.05),
        congestion.max_utilization()
    );
    bookshelf::write_pl(&design, &out)?;
    println!("placement written to {}", out.display());
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let name = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .unwrap_or_else(|| usage());
    let cells: usize = args
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let out: PathBuf = flag_value(args, "--out")?
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    let macros: usize = parse_flag(args, "--macros", 0)?;
    let spec = SynthesisSpec::new(name.clone(), cells, cells + cells / 20)
        .with_seed(seed)
        .with_macro_count(macros);
    let design = synthesize(&spec)?;
    println!("generated {}", DesignStats::of(&design));
    let aux = bookshelf::write_design(&design, &out)?;
    println!("written to {}", aux.display());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let aux = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .unwrap_or_else(|| usage());
    let density: f64 = parse_flag(args, "--density", 0.9)?;
    let design = bookshelf::read_aux(Path::new(aux), density)?;
    let s = DesignStats::of(&design);
    println!("{s}");
    println!("region: {}", design.region());
    println!("rows: {}", design.rows().len());
    println!("initial HPWL: {:.0}", design.total_hpwl());
    Ok(())
}

fn cmd_plot(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let aux = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .unwrap_or_else(|| usage());
    let out: PathBuf = flag_value(args, "-o")?
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(aux).with_extension("svg"));
    let nets: usize = parse_flag(args, "--nets", 0)?;
    let design = bookshelf::read_aux(Path::new(aux), 0.9)?;
    let config = xplace::db::plot::PlotConfig {
        longest_nets: nets,
        ..Default::default()
    };
    xplace::db::plot::write_svg(&design, &config, &out)?;
    println!("SVG written to {}", out.display());
    Ok(())
}
