//! The `xplace` command-line placer.
//!
//! ```text
//! xplace place  <design.aux> [-o out.pl] [--density 0.9] [--baseline] [--max-iters N]
//!               [--multilevel] [--coarse-iters N] [--trace out.jsonl] [--report out.json]
//! xplace batch  <manifest.json> [--threads N] [--trace-dir DIR] [--report out.json]
//! xplace serve  [--addr HOST:PORT] [--threads N] [--queue-depth N]
//!               [--max-inflight-per-client N]
//! xplace submit <manifest.json> [--addr HOST:PORT] [--client NAME]
//!               [--trace-dir DIR] [--report out.json]
//! xplace servectl <stats|shutdown> [--addr HOST:PORT]
//! xplace synth  <name> <cells> [--out dir] [--seed N] [--macros N] [--nets N]
//!               [--topology random|systolic|butterfly]
//! xplace stats  <design.aux>
//! xplace plot   <design.aux> [-o out.svg] [--nets N] [--density D]
//! ```
//!
//! `place` reads a Bookshelf benchmark, runs global placement +
//! legalization + detailed placement, reports the metrics the paper's
//! tables report, and writes the placed `.pl`; `--trace` streams the
//! per-iteration telemetry events as JSON-lines and `--report` writes the
//! run summary JSON (see DESIGN.md §"Experiment index"). `batch` runs every
//! job of a manifest concurrently with per-job failure isolation and exits
//! non-zero if any job failed (see README §"Batch placement"). `synth`
//! generates a synthetic benchmark in Bookshelf format. `stats` prints
//! Table-1-style statistics. `serve` runs the placement daemon: batch
//! manifests arrive as `POST /batch` bodies, execute on the persistent
//! worker pool with warm shared caches, and stream their telemetry back
//! while jobs run (see README §"Serving"). `submit` is the matching wire
//! client: it sends a manifest to a running daemon and writes the same
//! artifacts `batch` would — byte-identical traces, a comparator-equal
//! report. `servectl` inspects (`stats`) or drains (`shutdown`) a daemon.
//!
//! Argument parsing lives in [`xplace::cli`] so its rules are unit-tested.

use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use xplace::cli::{
    flag_value, has_flag, load_manifest, parse_batch_args, parse_explore_args, parse_flag,
    parse_place_robust_args, parse_positional, parse_serve_args, parse_servectl_args,
    parse_submit_args, parse_threads, positional, ServeCtl,
};
use xplace::core::{
    Checkpoint, CheckpointOptions, CheckpointStore, FileCheckpointStore, GlobalPlacer, XplaceConfig,
};
use xplace::db::synthesis::{synthesize, SynthesisSpec, Topology};
use xplace::db::{bookshelf, DesignStats};
use xplace::legal::{check_legality, detailed_place, legalize, DpConfig};
use xplace::route::{estimate_congestion, RouteConfig};
use xplace::telemetry::{
    DpMetrics, JsonLinesSink, LgMetrics, NullSink, RouteMetrics, RunReport, ToJson,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  xplace place <design.aux> [-o out.pl] [--density D] [--baseline] \
         [--max-iters N] [--seed N] [--threads N] [--multilevel] [--coarse-iters N] \
         [--trace out.jsonl] [--report out.json] [--checkpoint-every N \
         --checkpoint-file F] [--resume-from F] [--deadline-ns N] \
         [--explore K [--explore-generations N] [--explore-keep N]]\n  \
         xplace batch <manifest.json> [--threads N] [--trace-dir DIR] [--report out.json] \
         [--retries N]\n  \
         xplace serve [--addr HOST:PORT] [--threads N] [--queue-depth N] \
         [--max-inflight-per-client N]\n  \
         xplace submit <manifest.json> [--addr HOST:PORT] [--client NAME] \
         [--trace-dir DIR] [--report out.json]\n  \
         xplace servectl <stats|shutdown> [--addr HOST:PORT]\n  \
         xplace synth <name> <cells> [--out DIR] [--seed N] [--macros N] [--nets N] \
         [--topology random|systolic|butterfly]\n  xplace stats \
         <design.aux> [--density D]\n  xplace plot <design.aux> [-o out.svg] [--nets N] \
         [--density D]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("place") => cmd_place(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("servectl") => cmd_servectl(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("plot") => cmd_plot(&args[1..]),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn cmd_place(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let aux = positional(args, 0).unwrap_or_else(|| usage());
    let density: f64 = parse_flag(args, "--density", 0.9)?;
    let out: PathBuf = flag_value(args, "-o")?
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(aux).with_extension("placed.pl"));
    let trace_path = flag_value(args, "--trace")?.map(PathBuf::from);
    let report_path = flag_value(args, "--report")?.map(PathBuf::from);
    let robust = parse_place_robust_args(args)?;
    let mut design = bookshelf::read_aux(Path::new(aux), density)?;
    println!("loaded {}", DesignStats::of(&design));

    let mut config = if has_flag(args, "--baseline") {
        XplaceConfig::dreamplace_like()
    } else {
        XplaceConfig::xplace()
    };
    config.schedule.max_iterations = parse_flag(args, "--max-iters", 1500)?;
    config.seed = parse_flag(args, "--seed", 0x5eed)?;
    config.threads = parse_threads(args, xplace::parallel::available_threads())?;
    config.multilevel.enabled = has_flag(args, "--multilevel");
    config.multilevel.coarse_max_iterations = parse_flag(
        args,
        "--coarse-iters",
        config.multilevel.coarse_max_iterations,
    )?;
    println!("threads: {} (deterministic for any count)", config.threads);
    if config.multilevel.enabled {
        println!(
            "multilevel: enabled (floor {} movable cells, {} coarse iters/level)",
            config.multilevel.min_cells, config.multilevel.coarse_max_iterations
        );
    }

    if let Some(explore) = parse_explore_args(args)? {
        if robust.checkpoint_every > 0 || robust.resume_from.is_some() {
            return Err(
                "--explore drives its own checkpoint schedule; drop --checkpoint-every/\
                 --resume-from"
                    .into(),
            );
        }
        return place_population(
            design,
            &config,
            &explore,
            &robust,
            &trace_path,
            &report_path,
            &out,
        );
    }

    let resume_cp: Option<Checkpoint> = match &robust.resume_from {
        Some(p) => {
            let cp = Checkpoint::load(p)?;
            println!("resuming from {} (iteration {})", p.display(), cp.iteration);
            Some(cp)
        }
        None => None,
    };
    let store: Option<FileCheckpointStore> = robust
        .checkpoint_file
        .as_ref()
        .map(FileCheckpointStore::new);
    let ckpt = CheckpointOptions {
        every: robust.checkpoint_every,
        store: store.as_ref().map(|s| s as &dyn CheckpointStore),
        resume: resume_cp.as_ref(),
        stop_at: None,
    };

    // With --trace, events stream straight to disk as JSON-lines; without
    // it the NullSink keeps the hot loop free of telemetry work. A trace
    // I/O failure does not abort the run — the placement is still valid —
    // but it is surfaced in the report and fails the exit code.
    let mut trace_error: Option<String> = None;
    let gp = match &trace_path {
        Some(p) => {
            let mut sink = JsonLinesSink::new(BufWriter::new(File::create(p)?));
            let gp = GlobalPlacer::new(config.clone()).place_traced_opts(
                &mut design,
                &mut sink,
                ckpt,
            )?;
            let written = sink.written();
            let flushed = sink
                .finish()
                .and_then(|w| w.into_inner().map_err(|e| e.into_error()))
                .and_then(|mut f| std::io::Write::flush(&mut f).map(|()| f));
            match flushed {
                Ok(_) => println!("trace written to {} ({written} events)", p.display()),
                Err(e) => {
                    eprintln!("warning: trace stream failed after {written} event(s): {e}");
                    trace_error = Some(e.to_string());
                }
            }
            gp
        }
        None => {
            GlobalPlacer::new(config.clone()).place_traced_opts(&mut design, &mut NullSink, ckpt)?
        }
    };
    if let Some(s) = &store {
        println!(
            "checkpoints: {} snapshot(s) written to {}",
            s.saves(),
            s.path().display()
        );
    }
    println!(
        "GP: {} iterations, overflow {:.3} -> {:.3}, HPWL {:.0} -> {:.0}, \
         modeled GPU {:.3}s ({:.3} ms/iter), wall {:.2}s",
        gp.iterations,
        gp.initial_overflow,
        gp.final_overflow,
        gp.initial_hpwl,
        gp.final_hpwl,
        gp.modeled_gp_seconds(),
        gp.modeled_ms_per_iter(),
        gp.wall_seconds
    );
    let lg = legalize(&mut design)?;
    println!(
        "LG: HPWL {:.0} -> {:.0}, mean displacement {:.2} ({:.2}s)",
        lg.initial_hpwl, lg.final_hpwl, lg.mean_displacement, lg.wall_seconds
    );
    let dp = detailed_place(&mut design, &DpConfig::default());
    println!(
        "DP: HPWL {:.0} -> {:.0} ({} slides, {} reorders, {} swaps, {:.2}s)",
        dp.initial_hpwl, dp.final_hpwl, dp.slides, dp.reorders, dp.swaps, dp.wall_seconds
    );
    check_legality(&design)?;
    let congestion = estimate_congestion(&design, &RouteConfig::default());
    println!(
        "routability: top5 overflow {:.2}, max utilization {:.2}",
        congestion.top_overflow(0.05),
        congestion.max_utilization()
    );

    if let Some(p) = &report_path {
        let report = RunReport {
            design: design.name().to_string(),
            cells: design.netlist().num_cells(),
            nets: design.netlist().num_nets(),
            config: config.echo(),
            threads: config.threads,
            gp: gp.gp_metrics(),
            lg: Some(LgMetrics {
                initial_hpwl: lg.initial_hpwl,
                final_hpwl: lg.final_hpwl,
                mean_displacement: lg.mean_displacement,
                max_displacement: lg.max_displacement,
                wall_seconds: lg.wall_seconds,
            }),
            dp: Some(DpMetrics {
                initial_hpwl: dp.initial_hpwl,
                final_hpwl: dp.final_hpwl,
                slides: dp.slides,
                reorders: dp.reorders,
                swaps: dp.swaps,
                wall_seconds: dp.wall_seconds,
            }),
            route: Some(RouteMetrics {
                top5_overflow: congestion.top_overflow(0.05),
                max_utilization: congestion.max_utilization(),
            }),
            spectral: None,
            scaling: None,
            explore: None,
            trace_error: trace_error.clone(),
        };
        std::fs::write(p, report.to_json_string())?;
        println!("report written to {}", p.display());
    }

    bookshelf::write_pl(&design, &out)?;
    println!("placement written to {}", out.display());
    if let Some(e) = trace_error {
        return Err(format!("trace stream failed: {e}").into());
    }
    if let Some(deadline) = robust.deadline_ns {
        let modeled = gp.profile.modeled_ns();
        if modeled > deadline {
            return Err(format!("deadline exceeded: {modeled} modeled ns > {deadline} ns").into());
        }
    }
    Ok(())
}

/// The `--explore` arm of `place`: runs a perturbed-restart population
/// over the worker pool and writes the winner's artifacts (trace,
/// report, `.pl`) in exactly the shapes a plain run would.
fn place_population(
    design: xplace::db::Design,
    config: &XplaceConfig,
    explore: &xplace::cli::ExploreArgs,
    robust: &xplace::cli::PlaceRobustArgs,
    trace_path: &Option<PathBuf>,
    report_path: &Option<PathBuf>,
    out: &Path,
) -> Result<(), Box<dyn std::error::Error>> {
    let options = xplace::sched::PopulationOptions {
        members: explore.members,
        generations: explore.generations,
        keep: explore.keep,
        threads: config.threads,
    };
    println!(
        "explore: {} member(s), {} generation(s), keep {}",
        options.members, options.generations, options.keep
    );
    let outcome = xplace::sched::run_population(&design, config, &options)?;
    let metrics = outcome
        .report
        .explore
        .as_ref()
        .expect("population reports carry an explore section");
    for generation in &metrics.generations {
        let best = &generation.members[generation.best];
        let culled = generation.members.iter().filter(|m| m.culled).count();
        println!(
            "  gen {} @ iter {}: best member {} (HPWL {:.0}, overflow {:.3}), {} culled",
            generation.generation,
            generation.iteration,
            generation.best,
            best.hpwl,
            best.overflow,
            culled
        );
    }
    println!(
        "winner: member {} (lineage {:?}), GP HPWL {:.0}, total modeled {:.3}s",
        metrics.winner,
        metrics.winner_lineage,
        metrics.winner_hpwl,
        metrics.total_modeled_ns as f64 / 1e9
    );
    if let Some(lg) = &outcome.report.lg {
        println!("LG: HPWL {:.0} -> {:.0}", lg.initial_hpwl, lg.final_hpwl);
    }
    if let Some(dp) = &outcome.report.dp {
        println!("DP: HPWL {:.0} -> {:.0}", dp.initial_hpwl, dp.final_hpwl);
    }

    if let Some(p) = trace_path {
        std::fs::write(p, &outcome.trace)?;
        println!(
            "winner trace written to {} ({} events)",
            p.display(),
            outcome.trace.lines().count()
        );
    }
    if let Some(p) = report_path {
        std::fs::write(p, outcome.report.to_json_string())?;
        println!("report written to {}", p.display());
    }
    bookshelf::write_pl(&outcome.design, out)?;
    println!("placement written to {}", out.display());
    if let Some(deadline) = robust.deadline_ns {
        let modeled = metrics.total_modeled_ns;
        if modeled > deadline {
            return Err(
                format!("deadline exceeded: {modeled} total modeled ns > {deadline} ns").into(),
            );
        }
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let parsed =
        parse_batch_args(args, xplace::parallel::available_threads())?.unwrap_or_else(|| usage());
    let mut manifest = load_manifest(&parsed.manifest)?;
    if let Some(retries) = parsed.retries {
        manifest.retries = retries;
    }
    println!(
        "batch: {} job(s) from {} on {} thread(s)",
        manifest.jobs.len(),
        parsed.manifest.display(),
        parsed.threads
    );

    let outcome = xplace::sched::run_batch(&manifest, parsed.threads);
    for record in &outcome.report.jobs {
        match (&record.report, &record.error) {
            (Some(report), _) => println!(
                "  {:<20} completed  HPWL {:.0}  ({} cells, {} GP iters)",
                record.name,
                report.final_hpwl(),
                report.cells,
                report.gp.iterations
            ),
            (None, error) => println!(
                "  {:<20} FAILED     {}",
                record.name,
                error.as_deref().unwrap_or("unknown failure")
            ),
        }
    }
    let (hits, misses) = outcome.cache_stats;
    println!("design cache: {hits} hit(s), {misses} miss(es)");

    if let Some(dir) = &parsed.trace_dir {
        std::fs::create_dir_all(dir)?;
        let mut written = 0;
        for (record, trace) in outcome.report.jobs.iter().zip(&outcome.traces) {
            if let Some(text) = trace {
                std::fs::write(dir.join(format!("{}.jsonl", record.name)), text)?;
                written += 1;
            }
        }
        println!("traces written to {} ({written} file(s))", dir.display());
    }
    if let Some(p) = &parsed.report {
        std::fs::write(p, outcome.report.to_json_string())?;
        println!("batch report written to {}", p.display());
    }

    if !outcome.report.all_completed() {
        return Err(format!(
            "{} of {} job(s) failed",
            outcome.report.failed(),
            outcome.report.total()
        )
        .into());
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let parsed = parse_serve_args(args, xplace::parallel::available_threads())?;
    let server = xplace::serve::Server::bind(parsed.to_config())?;
    println!(
        "serving on http://{} ({} thread(s), queue depth {}, {} in-flight per client)",
        server.local_addr(),
        parsed.threads,
        parsed.queue_depth,
        parsed.max_inflight_per_client
    );
    println!("endpoints: POST /batch, GET /stats, POST /shutdown");
    server.run()?;
    println!("drained; goodbye");
    Ok(())
}

fn cmd_submit(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let parsed = parse_submit_args(args)?.unwrap_or_else(|| usage());
    // Parse locally first so a bad manifest is a clear local error, not a
    // wire rejection — then submit the raw text, not a re-rendering.
    load_manifest(&parsed.manifest)?;
    let text = std::fs::read_to_string(&parsed.manifest)?;
    let mut client = xplace::serve::Client::new(parsed.addr.clone());
    if let Some(identity) = &parsed.client {
        client = client.with_identity(identity.clone());
    }
    println!(
        "submitting {} to {}",
        parsed.manifest.display(),
        parsed.addr
    );
    let wire = match client.submit(&text)? {
        xplace::serve::Submission::Completed(wire) => wire,
        xplace::serve::Submission::Rejected {
            status, message, ..
        } => return Err(format!("daemon rejected the batch ({status}): {message}").into()),
    };
    for record in &wire.report.jobs {
        match (&record.report, &record.error) {
            (Some(report), _) => println!(
                "  {:<20} completed  HPWL {:.0}  ({} cells, {} GP iters)",
                record.name,
                report.final_hpwl(),
                report.cells,
                report.gp.iterations
            ),
            (None, error) => println!(
                "  {:<20} FAILED     {}",
                record.name,
                error.as_deref().unwrap_or("unknown failure")
            ),
        }
    }
    let (hits, misses) = wire.cache_stats;
    println!("daemon design cache: {hits} hit(s), {misses} miss(es) cumulative");

    if let Some(dir) = &parsed.trace_dir {
        std::fs::create_dir_all(dir)?;
        let mut written = 0;
        for (record, trace) in wire.report.jobs.iter().zip(&wire.traces) {
            if let Some(text) = trace {
                std::fs::write(dir.join(format!("{}.jsonl", record.name)), text)?;
                written += 1;
            }
        }
        println!("traces written to {} ({written} file(s))", dir.display());
    }
    if let Some(p) = &parsed.report {
        std::fs::write(p, wire.report.to_json_string())?;
        println!("batch report written to {}", p.display());
    }

    if !wire.report.all_completed() {
        return Err(format!(
            "{} of {} job(s) failed",
            wire.report.failed(),
            wire.report.total()
        )
        .into());
    }
    Ok(())
}

fn cmd_servectl(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (action, addr) = parse_servectl_args(args)?.unwrap_or_else(|| usage());
    let client = xplace::serve::Client::new(addr);
    match action {
        ServeCtl::Stats => println!("{}", client.stats()?.render()),
        ServeCtl::Shutdown => {
            client.shutdown()?;
            println!("drain requested; in-flight batches will finish");
        }
    }
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let name = positional(args, 0).unwrap_or_else(|| usage());
    let cells: usize = parse_positional(args, 1, "cells")?.unwrap_or_else(|| usage());
    let out: PathBuf = flag_value(args, "--out")?
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    let macros: usize = parse_flag(args, "--macros", 0)?;
    let nets: usize = parse_flag(args, "--nets", cells + cells / 20)?;
    let topology = match flag_value(args, "--topology")? {
        None => Topology::Random,
        Some(name) => Topology::parse(&name)
            .ok_or_else(|| format!("unknown topology '{name}' (random|systolic|butterfly)"))?,
    };
    let spec = SynthesisSpec::new(name.clone(), cells, nets)
        .with_seed(seed)
        .with_macro_count(macros)
        .with_topology(topology);
    let design = synthesize(&spec)?;
    println!("generated {}", DesignStats::of(&design));
    let aux = bookshelf::write_design(&design, &out)?;
    println!("written to {}", aux.display());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let aux = positional(args, 0).unwrap_or_else(|| usage());
    let density: f64 = parse_flag(args, "--density", 0.9)?;
    let design = bookshelf::read_aux(Path::new(aux), density)?;
    let s = DesignStats::of(&design);
    println!("{s}");
    println!("region: {}", design.region());
    println!("rows: {}", design.rows().len());
    println!("initial HPWL: {:.0}", design.total_hpwl());
    Ok(())
}

fn cmd_plot(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let aux = positional(args, 0).unwrap_or_else(|| usage());
    let out: PathBuf = flag_value(args, "-o")?
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(aux).with_extension("svg"));
    let nets: usize = parse_flag(args, "--nets", 0)?;
    let density: f64 = parse_flag(args, "--density", 0.9)?;
    let design = bookshelf::read_aux(Path::new(aux), density)?;
    let config = xplace::db::plot::PlotConfig {
        longest_nets: nets,
        ..Default::default()
    };
    xplace::db::plot::write_svg(&design, &config, &out)?;
    println!("SVG written to {}", out.display());
    Ok(())
}
