//! Cross-crate placement flows.
//!
//! The paper's conclusion defers routability-driven placement to future
//! work; this module provides the classic cell-inflation realization of
//! it on top of the framework's extension points: place, estimate
//! congestion (RUDY), inflate the cells sitting in congested gcells, and
//! re-place — repeating until the congestion target is met or the
//! inflation budget is spent.

use xplace_core::{GlobalPlacer, PlaceError, XplaceConfig};
use xplace_db::netlist::NetlistBuilder;
use xplace_db::{CellKind, DbError, Design, Point};
use xplace_route::{
    estimate_congestion, pin_density_map, top_fraction_mean, CongestionMap, RouteConfig,
};

/// Configuration of the routability-driven flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutabilityConfig {
    /// Maximum place→inflate passes (the first pass is the plain
    /// placement).
    pub max_passes: usize,
    /// Per-cell inflation cap (a cell grows at most this factor per pass).
    pub max_inflation: f64,
    /// Stop once the top-5% gcell utilization falls below this (x100,
    /// same units as [`CongestionMap::top_overflow`]).
    pub target_top5: f64,
    /// Congestion-estimation parameters.
    pub route: RouteConfig,
    /// Total movable-area headroom: inflation never pushes utilization
    /// beyond this fraction of the target density.
    pub utilization_cap: f64,
}

impl Default for RoutabilityConfig {
    fn default() -> Self {
        RoutabilityConfig {
            max_passes: 3,
            max_inflation: 1.6,
            target_top5: 60.0,
            route: RouteConfig::default(),
            utilization_cap: 0.95,
        }
    }
}

/// Metrics of one routability pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutabilityPass {
    /// Top-5% gcell utilization after this pass's placement.
    pub top5_overflow: f64,
    /// Mean pin count of the 5% most pin-dense gcells (the local
    /// interconnect hotspot measure inflation directly relieves).
    pub peak_pin_density: f64,
    /// HPWL after this pass's placement.
    pub hpwl: f64,
    /// Mean inflation factor applied *going into the next* pass (1.0 on
    /// the final pass).
    pub mean_inflation: f64,
}

/// Outcome of [`routability_driven_place`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoutabilityReport {
    /// Per-pass metrics, in order.
    pub passes: Vec<RoutabilityPass>,
}

impl RoutabilityReport {
    /// Top-5% utilization of the first (plain) placement.
    pub fn initial_top5(&self) -> f64 {
        self.passes.first().map(|p| p.top5_overflow).unwrap_or(0.0)
    }

    /// Top-5% utilization of the final placement.
    pub fn final_top5(&self) -> f64 {
        self.passes.last().map(|p| p.top5_overflow).unwrap_or(0.0)
    }
}

/// Flow errors: placement or design-rebuild failures.
#[derive(Debug)]
pub enum FlowError {
    /// Global placement failed.
    Place(PlaceError),
    /// Rebuilding the inflated design failed.
    Db(DbError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Place(e) => write!(f, "placement failed: {e}"),
            FlowError::Db(e) => write!(f, "design rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<PlaceError> for FlowError {
    fn from(e: PlaceError) -> Self {
        FlowError::Place(e)
    }
}

impl From<DbError> for FlowError {
    fn from(e: DbError) -> Self {
        FlowError::Db(e)
    }
}

/// Routability-driven global placement by congestion-aware cell inflation.
///
/// The design's movable-cell positions are updated in place; cell sizes
/// are never modified on the caller's design (inflation happens on an
/// internal copy, exactly like the temporary inflation of Ripple/eh?Placer
/// style routability flows).
///
/// # Errors
///
/// Propagates placement failures; the inflated rebuild cannot fail for a
/// valid input design.
pub fn routability_driven_place(
    design: &mut Design,
    placer_config: XplaceConfig,
    config: &RoutabilityConfig,
) -> Result<RoutabilityReport, FlowError> {
    let mut passes = Vec::new();
    let mut working = design.clone();
    let mut inflation: Vec<f64> = vec![1.0; design.netlist().num_cells()];
    let base_stop = placer_config.schedule.stop_overflow;

    for pass in 0..config.max_passes.max(1) {
        // Each inflation pass tightens the overflow target: a small
        // inflated hotspot raises global overflow only slightly, and
        // without a tighter target the re-place would stop immediately
        // instead of spreading the grown cells.
        let mut pass_config = placer_config.clone();
        pass_config.schedule.stop_overflow = (base_stop * 0.7f64.powi(pass as i32)).max(0.02);
        GlobalPlacer::new(pass_config).place(&mut working)?;
        // Copy positions back to the caller's (uninflated) design.
        design.set_positions(working.positions().to_vec());
        let congestion = estimate_congestion(design, &config.route);
        let pins = pin_density_map(design, &config.route);
        let top5 = congestion.top_overflow(0.05);
        let peak_pin_density = top_fraction_mean(&pins, 0.05);
        let hpwl = design.total_hpwl();

        let last = pass + 1 == config.max_passes || top5 <= config.target_top5;
        let mean_inflation = if last {
            1.0
        } else {
            update_inflation(design, &congestion, &pins, &mut inflation, config)
        };
        passes.push(RoutabilityPass {
            top5_overflow: top5,
            peak_pin_density,
            hpwl,
            mean_inflation,
        });
        if last {
            break;
        }
        working = inflated_design(design, &inflation)?;
    }
    Ok(RoutabilityReport { passes })
}

/// Grows the inflation factor of every movable cell by the wire
/// utilization and relative pin density of its gcell, clamped per cell and
/// renormalized so the total movable area respects the utilization cap.
/// Returns the mean factor.
fn update_inflation(
    design: &Design,
    congestion: &CongestionMap,
    pins: &xplace_fft::Grid2,
    inflation: &mut [f64],
    config: &RoutabilityConfig,
) -> f64 {
    let nl = design.netlist();
    let region = design.region();
    let (gx, gy) = (congestion.demand_h.nx(), congestion.demand_h.ny());
    // Pin threshold over *occupied* gcells: the grid is mostly empty, so
    // the raw mean would flag every cell-bearing gcell as a hotspot and
    // inflate uniformly (a no-op after renormalization).
    let occupied = pins.as_slice().iter().filter(|&&v| v > 0.0).count().max(1);
    let mean_pins = (pins.sum() / occupied as f64).max(1e-9);
    let mut inflated_area = 0.0;
    let mut base_area = 0.0;
    for id in nl.cell_ids() {
        let c = nl.cell(id);
        if !c.is_movable() {
            continue;
        }
        let p = design.position(id);
        let bx = (((p.x - region.lx) / congestion.gcell_w) as usize).min(gx - 1);
        let by = (((p.y - region.ly) / congestion.gcell_h) as usize).min(gy - 1);
        let wire_u = congestion.demand_h[(bx, by)].max(congestion.demand_v[(bx, by)]);
        // Pin pressure: gcells holding >1.5x the average pin count are
        // local-congestion hotspots regardless of wire demand.
        let pin_u = pins[(bx, by)] / (1.5 * mean_pins);
        let factor = wire_u.max(pin_u).max(1.0).min(config.max_inflation);
        inflation[id.index()] = (inflation[id.index()] * factor).min(config.max_inflation);
        base_area += c.area();
        inflated_area += c.area() * inflation[id.index()];
    }
    // Respect the area budget: scale factors back toward 1 if needed.
    let free = design.region_area() - design.fixed_area_in_region();
    let budget = free * design.target_density() * config.utilization_cap;
    if inflated_area > budget && inflated_area > base_area {
        let s = ((budget - base_area) / (inflated_area - base_area)).clamp(0.0, 1.0);
        for f in inflation.iter_mut() {
            *f = 1.0 + (*f - 1.0) * s;
        }
        inflated_area = base_area + (inflated_area - base_area) * s;
    }
    if base_area > 0.0 {
        inflated_area / base_area
    } else {
        1.0
    }
}

/// Rebuilds the design with movable-cell widths scaled by `inflation`,
/// preserving connectivity, fences, rows and positions.
fn inflated_design(design: &Design, inflation: &[f64]) -> Result<Design, DbError> {
    let nl = design.netlist();
    let mut b = NetlistBuilder::with_capacity(nl.num_cells(), nl.num_nets(), nl.num_pins());
    let region_w = design.region().width();
    for id in nl.cell_ids() {
        let c = nl.cell(id);
        let w = if c.kind() == CellKind::Movable {
            (c.width() * inflation[id.index()]).min(region_w)
        } else {
            c.width()
        };
        b.add_cell(c.name(), w, c.height(), c.kind());
    }
    for net in nl.nets() {
        let pins: Vec<(xplace_db::CellId, Point)> = net
            .pins()
            .map(|p| (nl.pin(p).cell, nl.pin(p).offset))
            .collect();
        b.add_net_weighted(net.name(), pins, net.weight())?;
    }
    let netlist = b.finish()?;
    let mut out = Design::new(
        design.name(),
        netlist,
        design.region(),
        design.rows().to_vec(),
        design.target_density(),
        design.positions().to_vec(),
    )?;
    out.set_fences(design.fences().to_vec())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplace_db::synthesis::{synthesize, SynthesisSpec};

    fn congested_design(seed: u64) -> Design {
        synthesize(&SynthesisSpec::new("rd", 600, 620).with_seed(seed)).expect("synthesis")
    }

    fn quick_placer() -> XplaceConfig {
        let mut cfg = XplaceConfig::xplace();
        cfg.schedule.max_iterations = 1000;
        cfg
    }

    #[test]
    fn flow_runs_and_reports_passes() {
        let mut d = congested_design(3);
        let cfg = RoutabilityConfig {
            max_passes: 2,
            target_top5: 0.0, // force the inflation pass
            route: RouteConfig {
                capacity: 2.0,
                ..RouteConfig::default()
            },
            ..Default::default()
        };
        let report = routability_driven_place(&mut d, quick_placer(), &cfg).expect("flow runs");
        assert_eq!(report.passes.len(), 2);
        assert!(
            report.passes[0].mean_inflation > 1.0,
            "inflation must be applied"
        );
        assert_eq!(report.passes[1].mean_inflation, 1.0);
        // Cell sizes in the caller's design are untouched.
        let check = congested_design(3);
        for (a, b) in d.netlist().cells().iter().zip(check.netlist().cells()) {
            assert_eq!(a.width(), b.width());
        }
    }

    /// A design with a genuine hotspot: a clique of "hub" cells whose
    /// dense mutual connectivity makes the placer pull them into one tight
    /// pin-dense blob (uniform synthetic netlists place near-uniformly and
    /// leave inflation nothing to fix).
    fn hub_design() -> Design {
        use xplace_db::Rect;
        let mut b = NetlistBuilder::new();
        let n_bg = 300usize;
        let n_hub = 40usize;
        let mut ids = Vec::new();
        for i in 0..n_bg + n_hub {
            ids.push(b.add_cell(format!("c{i}"), 2.0, 12.0, CellKind::Movable));
        }
        // Background: loose chain.
        for i in 0..n_bg - 1 {
            b.add_net(
                format!("bg{i}"),
                vec![(ids[i], Point::default()), (ids[i + 1], Point::default())],
            )
            .expect("net");
        }
        // Hubs: dense clique (each hub tied to the next six).
        for i in 0..n_hub {
            for d in 1..=6usize {
                let j = (i + d) % n_hub;
                b.add_net(
                    format!("hub{i}_{d}"),
                    vec![
                        (ids[n_bg + i], Point::default()),
                        (ids[n_bg + j], Point::default()),
                    ],
                )
                .expect("net");
            }
        }
        let nl = b.finish().expect("netlist");
        let width = 140.0;
        let rows: Vec<xplace_db::Row> = (0..10)
            .map(|r| xplace_db::Row {
                y: r as f64 * 12.0,
                height: 12.0,
                x_min: 0.0,
                x_max: width,
                site_width: 1.0,
            })
            .collect();
        let center = Point::new(width * 0.5, 60.0);
        Design::new(
            "hubs",
            nl,
            Rect::new(0.0, 0.0, width, 120.0),
            rows,
            0.9,
            vec![center; n_bg + n_hub],
        )
        .expect("design")
    }

    #[test]
    fn inflation_relieves_pin_hotspots() {
        let mut plain = hub_design();
        GlobalPlacer::new(quick_placer())
            .place(&mut plain)
            .expect("plain placement");
        let route = RouteConfig::default();
        // The hotspot is ~40 hub gcells; measure the sharpest 1% so the
        // uniform background does not dilute it.
        let hot = |d: &Design| {
            top_fraction_mean(
                &pin_density_map(
                    d,
                    &RouteConfig {
                        gcells: 32,
                        ..route
                    },
                ),
                0.01,
            )
        };
        let plain_peak = hot(&plain);

        let mut driven = hub_design();
        let cfg = RoutabilityConfig {
            max_passes: 3,
            target_top5: 0.0,
            max_inflation: 2.0,
            route,
            ..Default::default()
        };
        let report = routability_driven_place(&mut driven, quick_placer(), &cfg).expect("flow");
        // The flow's own metrics must improve pass over pass: wire
        // congestion and pin hotspots both relax as the hubs inflate.
        let first = report.passes.first().expect("passes");
        let last = report.passes.last().expect("passes");
        assert!(
            last.top5_overflow < first.top5_overflow * 0.95,
            "top5 should relax: {} -> {}",
            first.top5_overflow,
            last.top5_overflow
        );
        assert!(
            last.peak_pin_density < first.peak_pin_density,
            "peak pin density should relax: {} -> {}",
            first.peak_pin_density,
            last.peak_pin_density
        );
        // And the driven result is no worse than the plain one on the
        // sharp single-gcell hotspot metric.
        let driven_peak = hot(&driven);
        assert!(
            driven_peak <= plain_peak * 1.02,
            "sharp hotspot must not worsen: plain {plain_peak:.2} vs driven {driven_peak:.2}"
        );
        // The wirelength cost of the relief is bounded.
        let plain_hpwl = plain.total_hpwl();
        assert!(
            report.passes.last().expect("passes").hpwl < plain_hpwl * 1.4,
            "HPWL cost too high: {} vs {plain_hpwl}",
            report.passes.last().expect("passes").hpwl
        );
    }

    #[test]
    fn flow_error_wraps_both_sources_with_context() {
        let place: FlowError = PlaceError::InvalidConfig("max_iterations is zero".into()).into();
        assert!(place.to_string().contains("placement failed"), "{place}");
        assert!(matches!(place, FlowError::Place(_)));
        let db: FlowError = DbError::InvalidSpec("num_cells must be positive".into()).into();
        assert!(db.to_string().contains("design rebuild failed"), "{db}");
        assert!(matches!(db, FlowError::Db(_)));
        // FlowError is a real std error so `?` contexts can box it.
        let _: &dyn std::error::Error = &place;
    }

    #[test]
    fn empty_report_accessors_are_total() {
        let report = RoutabilityReport { passes: Vec::new() };
        assert_eq!(report.initial_top5(), 0.0);
        assert_eq!(report.final_top5(), 0.0);
    }

    #[test]
    fn invalid_placer_config_propagates_as_flow_error() {
        let mut d = congested_design(11);
        let mut cfg = quick_placer();
        cfg.schedule.max_iterations = 0;
        let err = routability_driven_place(&mut d, cfg, &RoutabilityConfig::default());
        assert!(matches!(err, Err(FlowError::Place(_))), "{err:?}");
    }

    #[test]
    fn zero_max_passes_still_runs_one_pass() {
        let mut d = congested_design(5);
        let cfg = RoutabilityConfig {
            max_passes: 0,
            target_top5: 1e9, // any placement satisfies it
            ..Default::default()
        };
        let report = routability_driven_place(&mut d, quick_placer(), &cfg).expect("flow");
        assert_eq!(report.passes.len(), 1);
        assert_eq!(report.passes[0].mean_inflation, 1.0);
    }

    #[test]
    fn early_exit_when_target_met() {
        let mut d = congested_design(7);
        let cfg = RoutabilityConfig {
            max_passes: 5,
            target_top5: 1e9, // any placement satisfies it
            ..Default::default()
        };
        let report = routability_driven_place(&mut d, quick_placer(), &cfg).expect("flow");
        assert_eq!(report.passes.len(), 1);
        assert_eq!(report.initial_top5(), report.final_top5());
    }

    #[test]
    fn area_budget_caps_inflation() {
        // A dense design (utilization 0.85) leaves almost no headroom:
        // inflation must renormalize rather than exceed the density cap.
        let mut d = synthesize(
            &SynthesisSpec::new("dense", 400, 420)
                .with_seed(9)
                .with_utilization(0.85)
                .with_target_density(0.92),
        )
        .expect("synthesis");
        let cfg = RoutabilityConfig {
            max_passes: 2,
            target_top5: 0.0,
            route: RouteConfig {
                capacity: 0.5,
                ..RouteConfig::default()
            },
            max_inflation: 3.0,
            ..Default::default()
        };
        let report = routability_driven_place(&mut d, quick_placer(), &cfg).expect("flow");
        // Mean inflation stays within the headroom 0.92*0.95/0.85 ~ 1.03.
        assert!(
            report.passes[0].mean_inflation < 1.1,
            "area budget violated: mean inflation {}",
            report.passes[0].mean_inflation
        );
    }
}
