//! Command-line argument parsing for the `xplace` binary.
//!
//! The binary's `main.rs` is a thin dispatcher over these helpers so the
//! parsing rules are unit-testable. Three rules matter beyond the obvious:
//!
//! * A flag's value must not itself be a `--flag`: `-o --baseline` is a
//!   missing `-o` value, not a request to write a file named
//!   `--baseline`. Single-dash values stay legal so negative numbers
//!   (`--seed -3` for an i64 flag) still parse.
//! * A present-but-unparseable value is a hard error naming the flag and
//!   the offending text — never a silent fallback to the default.
//! * `--threads 0` is rejected up front: the worker pool needs at least
//!   one lane, and silently clamping would misreport the run's
//!   configuration in telemetry.

/// Returns the value following `flag`, `Ok(None)` when the flag is absent,
/// or an error when the flag is present without a usable value.
///
/// A following token that starts with `--` is *not* a value — it is the
/// next flag, so the original flag is missing its value:
///
/// ```
/// use xplace::cli::flag_value;
/// let args: Vec<String> = ["-o", "--baseline"].iter().map(|s| s.to_string()).collect();
/// assert!(flag_value(&args, "-o").is_err());
/// ```
pub fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("missing value for {flag}")),
        },
    }
}

/// True when `flag` appears anywhere in `args`.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses the value of a numeric `flag`, falling back to `default` only when
/// the flag is absent; a present-but-unparseable value is a hard error, not
/// a silent fallback.
pub fn parse_flag<T>(args: &[String], flag: &str, default: T) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| format!("invalid value '{v}' for {flag}: {e}")),
    }
}

/// Returns the positional argument at `index`, or `None` when it is absent
/// or is a flag (starts with `-`).
pub fn positional(args: &[String], index: usize) -> Option<&String> {
    args.get(index).filter(|a| !a.starts_with('-'))
}

/// Parses the positional argument at `index`. `Ok(None)` when it is absent
/// or flag-like (so the caller can print usage); a present-but-unparseable
/// value is a hard error naming `what`.
pub fn parse_positional<T>(args: &[String], index: usize, what: &str) -> Result<Option<T>, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    match positional(args, index) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|e| format!("invalid value '{v}' for <{what}>: {e}")),
    }
}

/// Parses `--threads`, defaulting to `default` and rejecting zero.
pub fn parse_threads(args: &[String], default: usize) -> Result<usize, String> {
    let threads: usize = parse_flag(args, "--threads", default)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(threads)
}

/// Robustness flags of the `place` subcommand: checkpoint cadence and
/// destination, a snapshot to resume from, and a modeled-ns deadline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlaceRobustArgs {
    /// Checkpoint cadence in GP iterations (`--checkpoint-every`, 0 =
    /// disabled).
    pub checkpoint_every: usize,
    /// Checkpoint file (`--checkpoint-file`); required when the cadence
    /// is non-zero.
    pub checkpoint_file: Option<std::path::PathBuf>,
    /// Checkpoint file to resume from (`--resume-from`).
    pub resume_from: Option<std::path::PathBuf>,
    /// Modeled-ns budget for the GP run (`--deadline-ns`); exceeding it
    /// is a run failure.
    pub deadline_ns: Option<u64>,
}

/// Parses the `place` robustness flags (`--checkpoint-every N
/// --checkpoint-file F`, `--resume-from F`, `--deadline-ns N`).
///
/// # Errors
///
/// A non-zero checkpoint cadence without `--checkpoint-file` is
/// rejected, as are the usual flag-parsing failures.
pub fn parse_place_robust_args(args: &[String]) -> Result<PlaceRobustArgs, String> {
    let checkpoint_every: usize = parse_flag(args, "--checkpoint-every", 0)?;
    let checkpoint_file = flag_value(args, "--checkpoint-file")?.map(std::path::PathBuf::from);
    if checkpoint_every > 0 && checkpoint_file.is_none() {
        return Err("--checkpoint-every requires --checkpoint-file".into());
    }
    Ok(PlaceRobustArgs {
        checkpoint_every,
        checkpoint_file,
        resume_from: flag_value(args, "--resume-from")?.map(std::path::PathBuf::from),
        deadline_ns: match flag_value(args, "--deadline-ns")? {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|e| format!("invalid value '{v}' for --deadline-ns: {e}"))?,
            ),
        },
    })
}

/// Exploration flags of the `place` subcommand (`--explore K`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreArgs {
    /// Population size `K` (`--explore`).
    pub members: usize,
    /// Generation count (`--explore-generations`, default 4).
    pub generations: usize,
    /// Survivors per cull (`--explore-keep`, default `max(1, K/2)`).
    pub keep: usize,
}

/// Parses the exploration flags. `Ok(None)` when `--explore` is absent;
/// the satellite flags without `--explore` are a hard error (they would
/// silently do nothing).
///
/// # Errors
///
/// Rejects `--explore 0`, a keep count outside `1..=K`, zero
/// generations, orphaned satellite flags, and garbage values.
pub fn parse_explore_args(args: &[String]) -> Result<Option<ExploreArgs>, String> {
    let members: Option<usize> = match flag_value(args, "--explore")? {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|e| format!("invalid value '{v}' for --explore: {e}"))?,
        ),
    };
    let Some(members) = members else {
        for orphan in ["--explore-generations", "--explore-keep"] {
            if has_flag(args, orphan) {
                return Err(format!("{orphan} requires --explore"));
            }
        }
        return Ok(None);
    };
    if members == 0 {
        return Err("--explore must be at least 1".into());
    }
    let generations: usize = parse_flag(args, "--explore-generations", 4)?;
    if generations == 0 {
        return Err("--explore-generations must be at least 1".into());
    }
    let keep: usize = parse_flag(args, "--explore-keep", (members / 2).max(1))?;
    if keep == 0 || keep > members {
        return Err(format!(
            "--explore-keep must be in 1..={members}, got {keep}"
        ));
    }
    Ok(Some(ExploreArgs {
        members,
        generations,
        keep,
    }))
}

/// Parsed arguments of the `batch` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchArgs {
    /// Path to the batch manifest JSON.
    pub manifest: std::path::PathBuf,
    /// Worker-pool width for the batch (job-level concurrency).
    pub threads: usize,
    /// Directory to write per-job JSON-lines traces into
    /// (`<dir>/<job>.jsonl`), if requested.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Path to write the batch report JSON to, if requested.
    pub report: Option<std::path::PathBuf>,
    /// Retry-budget override (`--retries`); `None` keeps the manifest's
    /// value.
    pub retries: Option<usize>,
}

/// Parses `batch <manifest.json> [--threads N] [--trace-dir DIR]
/// [--report out.json] [--retries N]`. Returns `Ok(None)` when the
/// manifest positional is missing (the caller prints usage).
///
/// # Errors
///
/// Propagates flag-parsing errors (missing values, garbage numbers,
/// `--threads 0`).
pub fn parse_batch_args(
    args: &[String],
    default_threads: usize,
) -> Result<Option<BatchArgs>, String> {
    let Some(manifest) = positional(args, 0) else {
        return Ok(None);
    };
    Ok(Some(BatchArgs {
        manifest: std::path::PathBuf::from(manifest),
        threads: parse_threads(args, default_threads)?,
        trace_dir: flag_value(args, "--trace-dir")?.map(std::path::PathBuf::from),
        report: flag_value(args, "--report")?.map(std::path::PathBuf::from),
        retries: match flag_value(args, "--retries")? {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|e| format!("invalid value '{v}' for --retries: {e}"))?,
            ),
        },
    }))
}

/// Parsed arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Kernel thread width jobs run with.
    pub threads: usize,
    /// Maximum waiting batches before 503 load shedding.
    pub queue_depth: usize,
    /// Maximum queued + running batches per client before 429.
    pub max_inflight_per_client: usize,
}

impl ServeArgs {
    /// Converts to the daemon's configuration (remaining fields at
    /// their [`Default`]s).
    pub fn to_config(&self) -> xplace_serve::ServeConfig {
        xplace_serve::ServeConfig {
            addr: self.addr.clone(),
            threads: self.threads,
            queue_depth: self.queue_depth,
            max_inflight_per_client: self.max_inflight_per_client,
            ..Default::default()
        }
    }
}

/// Parses `serve [--addr HOST:PORT] [--threads N] [--queue-depth N]
/// [--max-inflight-per-client N]`. Every flag has a default, so there is
/// no usage case — only hard errors.
///
/// # Errors
///
/// Propagates flag-parsing errors; like `--threads 0`, a zero queue
/// depth or quota is rejected up front (each bound needs at least one
/// slot to admit anything at all).
pub fn parse_serve_args(args: &[String], default_threads: usize) -> Result<ServeArgs, String> {
    let queue_depth: usize = parse_flag(args, "--queue-depth", 16)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    let max_inflight_per_client: usize = parse_flag(args, "--max-inflight-per-client", 4)?;
    if max_inflight_per_client == 0 {
        return Err("--max-inflight-per-client must be at least 1".into());
    }
    Ok(ServeArgs {
        addr: flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7333".into()),
        threads: parse_threads(args, default_threads)?,
        queue_depth,
        max_inflight_per_client,
    })
}

/// Parsed arguments of the `submit` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Path to the batch manifest JSON to submit.
    pub manifest: std::path::PathBuf,
    /// Daemon address (`host:port`).
    pub addr: String,
    /// `X-Client` identity, if any (quotas and fairness key on it).
    pub client: Option<String>,
    /// Directory to write per-job JSON-lines traces into
    /// (`<dir>/<job>.jsonl`), if requested.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Path to write the batch report JSON to, if requested.
    pub report: Option<std::path::PathBuf>,
}

/// Parses `submit <manifest.json> [--addr HOST:PORT] [--client NAME]
/// [--trace-dir DIR] [--report out.json]`. Returns `Ok(None)` when the
/// manifest positional is missing (the caller prints usage).
///
/// The artifact flags mirror `batch`'s on purpose: a wire submission
/// must be able to produce the exact files a local batch run would.
///
/// # Errors
///
/// Propagates flag-parsing errors (missing values).
pub fn parse_submit_args(args: &[String]) -> Result<Option<SubmitArgs>, String> {
    let Some(manifest) = positional(args, 0) else {
        return Ok(None);
    };
    Ok(Some(SubmitArgs {
        manifest: std::path::PathBuf::from(manifest),
        addr: flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7333".into()),
        client: flag_value(args, "--client")?,
        trace_dir: flag_value(args, "--trace-dir")?.map(std::path::PathBuf::from),
        report: flag_value(args, "--report")?.map(std::path::PathBuf::from),
    }))
}

/// An action of the `servectl` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeCtl {
    /// Print the daemon's `GET /stats` JSON.
    Stats,
    /// Request graceful shutdown (`POST /shutdown`).
    Shutdown,
}

/// Parses `servectl <stats|shutdown> [--addr HOST:PORT]`. Returns
/// `Ok(None)` when the action positional is missing (usage); an unknown
/// action is a hard error naming it.
///
/// # Errors
///
/// Unknown actions and flag-parsing errors.
pub fn parse_servectl_args(args: &[String]) -> Result<Option<(ServeCtl, String)>, String> {
    let Some(action) = positional(args, 0) else {
        return Ok(None);
    };
    let action = match action.as_str() {
        "stats" => ServeCtl::Stats,
        "shutdown" => ServeCtl::Shutdown,
        other => {
            return Err(format!(
                "unknown servectl action '{other}' (stats|shutdown)"
            ))
        }
    };
    let addr = flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7333".into());
    Ok(Some((action, addr)))
}

/// Reads and parses a batch manifest file, prefixing errors with the
/// path so the CLI message names the offending file.
///
/// # Errors
///
/// Returns read failures and every manifest validation error of
/// [`xplace_sched::BatchManifest::parse`] (malformed JSON, empty or
/// missing job list, duplicate job names, bad design sources).
pub fn load_manifest(path: &std::path::Path) -> Result<xplace_sched::BatchManifest, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
    xplace_sched::BatchManifest::parse(&text)
        .map_err(|e| format!("manifest {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_returns_following_token() {
        let args = argv(&["place", "-o", "out.pl"]);
        assert_eq!(flag_value(&args, "-o").unwrap(), Some("out.pl".into()));
        assert_eq!(flag_value(&args, "--seed").unwrap(), None);
    }

    #[test]
    fn flag_value_rejects_a_following_flag_as_value() {
        // The historical bug: `xplace place d.aux -o --baseline` wrote a
        // file literally named `--baseline` (and dropped the baseline
        // request). Now it is a missing-value error.
        let args = argv(&["d.aux", "-o", "--baseline"]);
        let err = flag_value(&args, "-o").unwrap_err();
        assert!(err.contains("missing value for -o"), "{err}");
    }

    #[test]
    fn flag_value_rejects_trailing_flag_without_value() {
        let args = argv(&["d.aux", "-o"]);
        assert!(flag_value(&args, "-o").is_err());
    }

    #[test]
    fn flag_value_allows_single_dash_values() {
        // Negative numbers must stay parseable; only `--`-prefixed tokens
        // are treated as flags.
        let args = argv(&["--offset", "-3"]);
        assert_eq!(flag_value(&args, "--offset").unwrap(), Some("-3".into()));
    }

    #[test]
    fn parse_flag_falls_back_only_when_absent() {
        let args = argv(&["--density", "0.8"]);
        assert_eq!(parse_flag(&args, "--density", 0.9).unwrap(), 0.8);
        assert_eq!(parse_flag(&args, "--nets", 5usize).unwrap(), 5);
    }

    #[test]
    fn parse_flag_errors_on_garbage() {
        let args = argv(&["--max-iters", "many"]);
        let err = parse_flag(&args, "--max-iters", 10usize).unwrap_err();
        assert!(
            err.contains("invalid value 'many' for --max-iters"),
            "{err}"
        );
    }

    #[test]
    fn positional_skips_flags() {
        let args = argv(&["mydesign", "--seed", "7"]);
        assert_eq!(positional(&args, 0), Some(&"mydesign".to_string()));
        assert_eq!(positional(&args, 1), None);
    }

    #[test]
    fn parse_positional_errors_on_unparseable_cells() {
        // The historical bug: `xplace synth chip banana` printed the
        // generic usage text instead of saying what was wrong.
        let args = argv(&["chip", "banana"]);
        let err = parse_positional::<usize>(&args, 1, "cells").unwrap_err();
        assert!(err.contains("invalid value 'banana' for <cells>"), "{err}");
    }

    #[test]
    fn parse_positional_absent_is_none() {
        let args = argv(&["chip"]);
        assert_eq!(parse_positional::<usize>(&args, 1, "cells").unwrap(), None);
        let args = argv(&["chip", "--seed", "3"]);
        assert_eq!(parse_positional::<usize>(&args, 1, "cells").unwrap(), None);
    }

    #[test]
    fn parse_positional_accepts_numbers() {
        let args = argv(&["chip", "5000"]);
        assert_eq!(
            parse_positional::<usize>(&args, 1, "cells").unwrap(),
            Some(5000)
        );
    }

    #[test]
    fn threads_zero_is_rejected() {
        let args = argv(&["--threads", "0"]);
        let err = parse_threads(&args, 4).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let args = argv(&["--threads", "2"]);
        assert_eq!(parse_threads(&args, 4).unwrap(), 2);
        assert_eq!(parse_threads(&argv(&[]), 4).unwrap(), 4);
    }

    #[test]
    fn has_flag_is_exact_match() {
        let args = argv(&["--baseline", "x"]);
        assert!(has_flag(&args, "--baseline"));
        assert!(!has_flag(&args, "--base"));
    }

    #[test]
    fn batch_args_parse_with_defaults_and_flags() {
        let args = argv(&["suite.json"]);
        let parsed = parse_batch_args(&args, 4).unwrap().unwrap();
        assert_eq!(parsed.manifest, std::path::PathBuf::from("suite.json"));
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed.trace_dir, None);
        assert_eq!(parsed.report, None);

        let args = argv(&[
            "suite.json",
            "--threads",
            "2",
            "--trace-dir",
            "traces",
            "--report",
            "batch.json",
        ]);
        let parsed = parse_batch_args(&args, 4).unwrap().unwrap();
        assert_eq!(parsed.threads, 2);
        assert_eq!(parsed.trace_dir, Some(std::path::PathBuf::from("traces")));
        assert_eq!(parsed.report, Some(std::path::PathBuf::from("batch.json")));
    }

    #[test]
    fn batch_retries_override_parses_and_rejects_garbage() {
        let parsed = parse_batch_args(&argv(&["m.json"]), 4).unwrap().unwrap();
        assert_eq!(parsed.retries, None);
        let parsed = parse_batch_args(&argv(&["m.json", "--retries", "2"]), 4)
            .unwrap()
            .unwrap();
        assert_eq!(parsed.retries, Some(2));
        assert!(parse_batch_args(&argv(&["m.json", "--retries", "lots"]), 4).is_err());
    }

    #[test]
    fn place_robust_args_parse_with_defaults_and_flags() {
        let parsed = parse_place_robust_args(&argv(&[])).unwrap();
        assert_eq!(parsed, PlaceRobustArgs::default());

        let parsed = parse_place_robust_args(&argv(&[
            "--checkpoint-every",
            "25",
            "--checkpoint-file",
            "gp.ckpt",
            "--resume-from",
            "old.ckpt",
            "--deadline-ns",
            "5000000000",
        ]))
        .unwrap();
        assert_eq!(parsed.checkpoint_every, 25);
        assert_eq!(
            parsed.checkpoint_file,
            Some(std::path::PathBuf::from("gp.ckpt"))
        );
        assert_eq!(
            parsed.resume_from,
            Some(std::path::PathBuf::from("old.ckpt"))
        );
        assert_eq!(parsed.deadline_ns, Some(5_000_000_000));
    }

    #[test]
    fn checkpoint_cadence_without_a_file_is_rejected() {
        let err = parse_place_robust_args(&argv(&["--checkpoint-every", "25"])).unwrap_err();
        assert!(err.contains("requires --checkpoint-file"), "{err}");
        assert!(parse_place_robust_args(&argv(&["--deadline-ns", "soon"])).is_err());
    }

    #[test]
    fn explore_args_parse_with_defaults_and_flags() {
        assert_eq!(parse_explore_args(&argv(&[])).unwrap(), None);

        let parsed = parse_explore_args(&argv(&["--explore", "8"]))
            .unwrap()
            .unwrap();
        assert_eq!(parsed.members, 8);
        assert_eq!(parsed.generations, 4);
        assert_eq!(parsed.keep, 4, "default keep is half the population");

        let parsed = parse_explore_args(&argv(&[
            "--explore",
            "5",
            "--explore-generations",
            "3",
            "--explore-keep",
            "2",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(parsed.members, 5);
        assert_eq!(parsed.generations, 3);
        assert_eq!(parsed.keep, 2);

        // K=1 keeps at least one member.
        let parsed = parse_explore_args(&argv(&["--explore", "1"]))
            .unwrap()
            .unwrap();
        assert_eq!(parsed.keep, 1);
    }

    #[test]
    fn explore_args_reject_degenerate_populations() {
        let err = parse_explore_args(&argv(&["--explore", "0"])).unwrap_err();
        assert!(err.contains("--explore must be at least 1"), "{err}");
        let err =
            parse_explore_args(&argv(&["--explore", "4", "--explore-keep", "5"])).unwrap_err();
        assert!(err.contains("--explore-keep must be in 1..=4"), "{err}");
        let err =
            parse_explore_args(&argv(&["--explore", "4", "--explore-keep", "0"])).unwrap_err();
        assert!(err.contains("--explore-keep must be in 1..=4"), "{err}");
        let err = parse_explore_args(&argv(&["--explore", "4", "--explore-generations", "0"]))
            .unwrap_err();
        assert!(
            err.contains("--explore-generations must be at least 1"),
            "{err}"
        );
        assert!(parse_explore_args(&argv(&["--explore", "many"])).is_err());
    }

    #[test]
    fn orphaned_explore_satellite_flags_are_rejected() {
        let err = parse_explore_args(&argv(&["--explore-keep", "2"])).unwrap_err();
        assert!(err.contains("--explore-keep requires --explore"), "{err}");
        let err = parse_explore_args(&argv(&["--explore-generations", "2"])).unwrap_err();
        assert!(
            err.contains("--explore-generations requires --explore"),
            "{err}"
        );
    }

    #[test]
    fn batch_args_without_manifest_ask_for_usage() {
        assert_eq!(parse_batch_args(&argv(&[]), 4).unwrap(), None);
        assert_eq!(
            parse_batch_args(&argv(&["--threads", "2"]), 4).unwrap(),
            None
        );
        // Bad flag values are still hard errors, not usage.
        assert!(parse_batch_args(&argv(&["m.json", "--threads", "0"]), 4).is_err());
    }

    #[test]
    fn serve_args_defaults_and_flags() {
        let parsed = parse_serve_args(&argv(&[]), 4).unwrap();
        assert_eq!(parsed.addr, "127.0.0.1:7333");
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed.queue_depth, 16);
        assert_eq!(parsed.max_inflight_per_client, 4);

        let parsed = parse_serve_args(
            &argv(&[
                "--addr",
                "0.0.0.0:8080",
                "--threads",
                "2",
                "--queue-depth",
                "3",
                "--max-inflight-per-client",
                "1",
            ]),
            4,
        )
        .unwrap();
        assert_eq!(parsed.addr, "0.0.0.0:8080");
        assert_eq!(parsed.threads, 2);
        assert_eq!(parsed.queue_depth, 3);
        assert_eq!(parsed.max_inflight_per_client, 1);
        let config = parsed.to_config();
        assert_eq!(config.addr, "0.0.0.0:8080");
        assert_eq!(config.threads, 2);
        assert_eq!(config.queue_depth, 3);
        assert_eq!(config.max_inflight_per_client, 1);
        assert_eq!(config.concurrency, 1, "defaults fill the rest");
    }

    #[test]
    fn serve_args_reject_zero_bounds_and_garbage() {
        let err = parse_serve_args(&argv(&["--queue-depth", "0"]), 4).unwrap_err();
        assert!(err.contains("--queue-depth must be at least 1"), "{err}");
        let err = parse_serve_args(&argv(&["--max-inflight-per-client", "0"]), 4).unwrap_err();
        assert!(
            err.contains("--max-inflight-per-client must be at least 1"),
            "{err}"
        );
        let err = parse_serve_args(&argv(&["--threads", "0"]), 4).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(parse_serve_args(&argv(&["--queue-depth", "many"]), 4).is_err());
        assert!(parse_serve_args(&argv(&["--addr"]), 4).is_err());
    }

    #[test]
    fn submit_args_defaults_and_flags() {
        assert_eq!(parse_submit_args(&argv(&[])).unwrap(), None);
        assert_eq!(parse_submit_args(&argv(&["--addr", "x:1"])).unwrap(), None);

        let parsed = parse_submit_args(&argv(&["suite.json"])).unwrap().unwrap();
        assert_eq!(parsed.manifest, std::path::PathBuf::from("suite.json"));
        assert_eq!(parsed.addr, "127.0.0.1:7333");
        assert_eq!(parsed.client, None);
        assert_eq!(parsed.trace_dir, None);
        assert_eq!(parsed.report, None);

        let parsed = parse_submit_args(&argv(&[
            "suite.json",
            "--addr",
            "127.0.0.1:9000",
            "--client",
            "ci",
            "--trace-dir",
            "traces",
            "--report",
            "wire.json",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(parsed.addr, "127.0.0.1:9000");
        assert_eq!(parsed.client, Some("ci".into()));
        assert_eq!(parsed.trace_dir, Some(std::path::PathBuf::from("traces")));
        assert_eq!(parsed.report, Some(std::path::PathBuf::from("wire.json")));
        assert!(parse_submit_args(&argv(&["suite.json", "--addr"])).is_err());
    }

    #[test]
    fn servectl_args_parse_actions() {
        assert_eq!(parse_servectl_args(&argv(&[])).unwrap(), None);
        assert_eq!(
            parse_servectl_args(&argv(&["stats"])).unwrap(),
            Some((ServeCtl::Stats, "127.0.0.1:7333".into()))
        );
        assert_eq!(
            parse_servectl_args(&argv(&["shutdown", "--addr", "h:1"])).unwrap(),
            Some((ServeCtl::Shutdown, "h:1".into()))
        );
        let err = parse_servectl_args(&argv(&["restart"])).unwrap_err();
        assert!(err.contains("unknown servectl action 'restart'"), "{err}");
    }

    fn write_temp_manifest(name: &str, text: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("xplace-cli-{}-{name}", std::process::id()));
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn load_manifest_parses_a_good_file() {
        let path = write_temp_manifest(
            "good.json",
            r#"{"jobs": [{"name": "a", "synth": {"cells": 50}}]}"#,
        );
        let manifest = load_manifest(&path).unwrap();
        assert_eq!(manifest.jobs.len(), 1);
        assert_eq!(manifest.jobs[0].name, "a");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_manifest_names_the_file_on_malformed_json() {
        let path = write_temp_manifest("bad.json", "{not json at all");
        let err = load_manifest(&path).unwrap_err();
        assert!(err.contains("bad.json"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_manifest_rejects_duplicate_job_names() {
        let path = write_temp_manifest(
            "dup.json",
            r#"{"jobs": [{"name": "a", "synth": {"cells": 10}},
                         {"name": "a", "synth": {"cells": 20}}]}"#,
        );
        let err = load_manifest(&path).unwrap_err();
        assert!(err.contains("duplicate job name `a`"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_manifest_reports_missing_files() {
        let err = load_manifest(std::path::Path::new("/nonexistent/suite.json")).unwrap_err();
        assert!(err.contains("cannot read manifest"), "{err}");
    }
}
