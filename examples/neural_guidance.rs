//! The Xplace-NN flow (§3.3 / §4.3 of the paper): train a Fourier neural
//! operator on self-generated data (random density maps labeled by the
//! exact spectral solver — no benchmark data), plug it into the placer as
//! density guidance, and compare against plain Xplace.
//!
//! Run with: `cargo run --example neural_guidance --release`

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::nn::{evaluate, train, DataConfig, Fno, FnoConfig, FnoGuidance, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the FNO on self-generated data.
    let config = FnoConfig {
        width: 8,
        modes: 6,
        num_layers: 3,
        proj_hidden: 32,
    };
    let mut fno = Fno::new(&config, 7)?;
    println!(
        "FNO: {} parameters (paper-scale config has {})",
        fno.num_params(),
        { Fno::new(&FnoConfig::paper(), 1)?.num_params() }
    );
    let data = DataConfig {
        grid: 32,
        blobs: 4,
        rects: 2,
        ..Default::default()
    };
    let train_cfg = TrainConfig {
        steps: 300,
        batch: 2,
        lr: 2e-3,
        data,
        seed: 11,
    };
    let report = train(&mut fno, &train_cfg)?;
    let held_out = evaluate(&mut fno, &data, 1_000_000, 8)?;
    println!(
        "training: final loss {:.4}, held-out relative-L2 {:.4} (zero predictor = 1.0)",
        report.final_loss, held_out
    );

    // 2. Place the same design with and without neural guidance.
    let spec = SynthesisSpec::new("nn_demo", 1_500, 1_600).with_seed(5);
    let mut plain_design = synthesize(&spec)?;
    let plain = GlobalPlacer::new(XplaceConfig::xplace()).place(&mut plain_design)?;

    let mut nn_design = synthesize(&spec)?;
    let guided = GlobalPlacer::new(XplaceConfig::xplace())
        .with_guidance(Box::new(FnoGuidance::new(fno)))
        .place(&mut nn_design)?;

    println!(
        "\nXplace:    HPWL {:.0}, {} iterations, GP {:.3} s modeled",
        plain.final_hpwl,
        plain.iterations,
        plain.modeled_gp_seconds()
    );
    println!(
        "Xplace-NN: HPWL {:.0}, {} iterations, GP {:.3} s modeled",
        guided.final_hpwl,
        guided.iterations,
        guided.modeled_gp_seconds()
    );
    println!(
        "HPWL ratio (NN / plain): {:.4}  (paper: ~0.999 on aggregate)",
        guided.final_hpwl / plain.final_hpwl
    );
    Ok(())
}
