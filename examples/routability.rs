//! Routability-driven placement (the paper's other future-work item):
//! place, estimate congestion with RUDY, inflate the cells in congested
//! gcells, re-place — watching the congestion metrics relax pass by pass.
//!
//! Run with: `cargo run --example routability --release`

use xplace::core::XplaceConfig;
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::flow::{routability_driven_place, RoutabilityConfig};
use xplace::route::RouteConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut design = synthesize(&SynthesisSpec::new("rdemo", 1_500, 1_560).with_seed(3))?;

    let mut placer = XplaceConfig::xplace();
    placer.schedule.max_iterations = 1200;
    let config = RoutabilityConfig {
        max_passes: 3,
        target_top5: 0.0, // run all passes for the demonstration
        max_inflation: 1.8,
        route: RouteConfig::default(),
        ..Default::default()
    };

    let report = routability_driven_place(&mut design, placer, &config)?;
    println!("pass  top5-overflow  peak-pin-density        HPWL  mean-inflation");
    for (i, p) in report.passes.iter().enumerate() {
        println!(
            "{i:>4}  {:>13.2}  {:>16.2}  {:>10.0}  {:>14.3}",
            p.top5_overflow, p.peak_pin_density, p.hpwl, p.mean_inflation
        );
    }
    println!(
        "\ntop5 overflow {:.2} -> {:.2} across {} passes \
         (cell sizes on the output design are untouched)",
        report.initial_top5(),
        report.final_top5(),
        report.passes.len()
    );
    Ok(())
}
