//! The paper's Table-2 flow on one ISPD 2005-like design: run the
//! DREAMPlace-like baseline and Xplace on the same instance, push both
//! results through the same legalizer + detailed placer, compare, and
//! export the Xplace result as a Bookshelf benchmark.
//!
//! Run with: `cargo run --example ispd2005_flow --release`

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::suites::ispd2005_like;
use xplace::db::synthesis::synthesize;
use xplace::db::{bookshelf, DesignStats};
use xplace::legal::{detailed_place, legalize, DpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // adaptec1 at 1% scale (set scale to 1.0 for the full contest size).
    let entry = &ispd2005_like(0.01)[0];
    println!(
        "design: {} (published size: {}k cells / {}k nets)",
        entry.name(),
        entry.published_cells / 1000,
        entry.published_nets / 1000
    );

    let mut results = Vec::new();
    for (label, config) in [
        ("DREAMPlace-like", XplaceConfig::dreamplace_like()),
        ("Xplace", XplaceConfig::xplace()),
    ] {
        let mut design = synthesize(&entry.spec)?;
        if results.is_empty() {
            println!("instance: {}", DesignStats::of(&design));
        }
        let gp = GlobalPlacer::new(config).place(&mut design)?;
        let lg = legalize(&mut design)?;
        let dp = detailed_place(&mut design, &DpConfig::default());
        println!(
            "{label:>16}: HPWL {:.0}, GP {:.3} s modeled ({} iters, {:.3} ms/iter), \
             LG+DP {:.2} s wall",
            dp.final_hpwl,
            gp.modeled_gp_seconds(),
            gp.iterations,
            gp.modeled_ms_per_iter(),
            lg.wall_seconds + dp.wall_seconds,
        );
        results.push((label, design, dp.final_hpwl, gp.modeled_gp_seconds()));
    }

    let (_, xp_design, xp_hpwl, xp_gp) = &results[1];
    let (_, _, base_hpwl, base_gp) = &results[0];
    println!(
        "\nXplace vs baseline: {:.2}x faster GP, HPWL ratio {:.4}",
        base_gp / xp_gp,
        xp_hpwl / base_hpwl
    );

    // Export the placed Xplace result as Bookshelf (what the paper hands
    // to NTUPlace3).
    let out_dir = std::env::temp_dir().join("xplace_ispd2005_flow");
    let aux = bookshelf::write_design(xp_design, &out_dir)?;
    println!("Bookshelf export written to {}", aux.display());
    Ok(())
}
