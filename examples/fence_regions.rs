//! Fence regions (the constraint the paper defers to future work): confine
//! named groups of cells to rectangles through the whole GP -> LG -> DP
//! flow.
//!
//! Run with: `cargo run --example fence_regions --release`

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::legal::{check_legality, detailed_place, legalize, DpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three fences along the top edge, each owning ~3% of the cells.
    let spec = SynthesisSpec::new("fenced_demo", 1_200, 1_260)
        .with_seed(7)
        .with_fences(3);
    let mut design = synthesize(&spec)?;
    for fence in design.fences() {
        println!(
            "fence `{}`: {} members confined to {}",
            fence.name(),
            fence.members().len(),
            fence.bounding_box()
        );
    }

    let gp = GlobalPlacer::new(XplaceConfig::xplace()).place(&mut design)?;
    println!(
        "\nGP: {} iterations, overflow {:.3}, HPWL {:.0}",
        gp.iterations, gp.final_overflow, gp.final_hpwl
    );

    legalize(&mut design)?;
    detailed_place(&mut design, &DpConfig::default());
    check_legality(&design)?; // includes fence containment
    println!("final placement is legal, all fence members contained");

    // Show where the members ended up.
    for fence in design.fences() {
        let bb = fence.bounding_box();
        let inside = fence
            .members()
            .iter()
            .filter(|&&m| bb.contains(design.position(m)))
            .count();
        println!(
            "fence `{}`: {}/{} members inside {}",
            fence.name(),
            inside,
            fence.members().len(),
            bb
        );
    }
    Ok(())
}
