//! Quickstart: place a small synthetic design end to end.
//!
//! Run with: `cargo run --example quickstart --release`

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};
use xplace::db::DesignStats;
use xplace::legal::{check_legality, detailed_place, legalize, DpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 2000-cell synthetic design (use xplace::db::bookshelf::read_aux
    //    or xplace::db::def::parse_def for real benchmark data).
    let spec = SynthesisSpec::new("quickstart", 2_000, 2_100)
        .with_seed(42)
        .with_macro_count(4);
    let mut design = synthesize(&spec)?;
    println!("design: {}", DesignStats::of(&design));

    // 2. Global placement with the full Xplace configuration.
    let report = GlobalPlacer::new(XplaceConfig::xplace()).place(&mut design)?;
    println!(
        "global placement: {} iterations, overflow {:.3} -> {:.3}, HPWL {:.0} -> {:.0}",
        report.iterations,
        report.initial_overflow,
        report.final_overflow,
        report.initial_hpwl,
        report.final_hpwl
    );
    println!(
        "  modeled GPU time {:.3} s ({:.3} ms/iter), wall {:.2} s, {} kernel launches",
        report.modeled_gp_seconds(),
        report.modeled_ms_per_iter(),
        report.wall_seconds,
        report.profile.launches
    );

    // 3. Legalization.
    let lg = legalize(&mut design)?;
    println!(
        "legalization: HPWL {:.0} -> {:.0}, mean displacement {:.2}",
        lg.initial_hpwl, lg.final_hpwl, lg.mean_displacement
    );

    // 4. Detailed placement.
    let dp = detailed_place(&mut design, &DpConfig::default());
    println!(
        "detailed placement: HPWL {:.0} -> {:.0} ({} slides, {} reorders, {} swaps)",
        dp.initial_hpwl, dp.final_hpwl, dp.slides, dp.reorders, dp.swaps
    );

    // 5. The result is legal.
    check_legality(&design)?;
    println!(
        "final placement is legal; total HPWL = {:.0}",
        design.total_hpwl()
    );
    Ok(())
}
