//! A single-design version of the paper's Table-3 ablation: how each
//! operator-level optimization (§3.1) changes the modeled per-iteration
//! GPU time and the kernel-launch count.
//!
//! Run with: `cargo run --example operator_ablation --release`

use xplace::core::{GlobalPlacer, XplaceConfig};
use xplace::db::synthesis::{synthesize, SynthesisSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SynthesisSpec::new("ablation", 4_000, 4_200).with_seed(3);
    let iterations = 120;

    let rows: Vec<(&str, XplaceConfig)> = vec![
        ("none", XplaceConfig::ablation(false, false, false, false)),
        (
            "+OR (reduction)",
            XplaceConfig::ablation(true, false, false, false),
        ),
        (
            "+OC (combination)",
            XplaceConfig::ablation(true, true, false, false),
        ),
        (
            "+OE (extraction)",
            XplaceConfig::ablation(true, true, true, false),
        ),
        (
            "+OS (skipping) = Xplace",
            XplaceConfig::ablation(true, true, true, true),
        ),
        ("DREAMPlace-like", XplaceConfig::dreamplace_like()),
    ];

    // Reference: full Xplace.
    let mut xplace_ms = 0.0;
    let mut measured = Vec::new();
    for (label, mut config) in rows {
        config.schedule.max_iterations = iterations;
        config.schedule.stop_overflow = 1e-12; // fixed iteration count
        let mut design = synthesize(&spec)?;
        let report = GlobalPlacer::new(config).place(&mut design)?;
        let ms = report.modeled_ms_per_iter();
        let launches = report.profile.launches as f64 / report.iterations as f64;
        if label.ends_with("Xplace") {
            xplace_ms = ms;
        }
        measured.push((label, ms, launches));
    }

    println!("operator-level ablation on a 4k-cell design ({iterations} GP iterations):\n");
    println!(
        "{:<26} {:>12} {:>10} {:>14}",
        "configuration", "ms/iter", "ratio", "launches/iter"
    );
    for (label, ms, launches) in measured {
        println!(
            "{label:<26} {ms:>12.4} {:>9.0}% {launches:>14.1}",
            100.0 * ms / xplace_ms
        );
    }
    println!("\n(ratio = per-iteration modeled GPU time relative to full Xplace = 100%)");
    Ok(())
}
